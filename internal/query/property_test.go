package query

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

// randomCQ is a generatable wrapper so testing/quick can produce random
// small conjunctive queries over a fixed signature.
type randomCQ struct {
	Q *CQ
}

// Generate implements quick.Generator: queries over predicates r/2, s/1,
// t/3 with up to 4 atoms, up to 4 variables and 2 constants, and 0-2 answer
// variables.
func (randomCQ) Generate(rng *rand.Rand, _ int) reflect.Value {
	vars := []logic.Term{
		logic.NewVar("X"), logic.NewVar("Y"), logic.NewVar("Z"), logic.NewVar("W"),
	}
	consts := []logic.Term{logic.NewConst("a"), logic.NewConst("b")}
	term := func() logic.Term {
		if rng.Intn(4) == 0 {
			return consts[rng.Intn(len(consts))]
		}
		return vars[rng.Intn(len(vars))]
	}
	preds := []struct {
		name  string
		arity int
	}{{"r", 2}, {"s", 1}, {"t", 3}}
	n := 1 + rng.Intn(3)
	body := make([]logic.Atom, n)
	for i := range body {
		p := preds[rng.Intn(len(preds))]
		args := make([]logic.Term, p.arity)
		for j := range args {
			args[j] = term()
		}
		body[i] = logic.NewAtom(p.name, args...)
	}
	// Answer variables drawn from the body's variables.
	bodyVars := logic.VarsOf(body)
	var head []logic.Term
	if len(bodyVars) > 0 {
		for k := 0; k < rng.Intn(3) && k < len(bodyVars); k++ {
			head = append(head, bodyVars[rng.Intn(len(bodyVars))])
		}
	}
	q := MustNew(logic.NewAtom("q", head...), body)
	return reflect.ValueOf(randomCQ{Q: q})
}

var quickCfg = &quick.Config{MaxCount: 200}

// TestContainmentReflexive: every CQ is contained in itself.
func TestContainmentReflexive(t *testing.T) {
	f := func(rq randomCQ) bool { return rq.Q.ContainedIn(rq.Q) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestContainmentAlphaInvariant: containment is invariant under renaming.
func TestContainmentAlphaInvariant(t *testing.T) {
	f := func(a, b randomCQ) bool {
		direct := a.Q.ContainedIn(b.Q)
		renamed := a.Q.Canonical().ContainedIn(b.Q.Canonical())
		return direct == renamed
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestContainmentTransitive: a ⊆ b and b ⊆ c imply a ⊆ c.
func TestContainmentTransitive(t *testing.T) {
	f := func(a, b, c randomCQ) bool {
		if a.Q.ContainedIn(b.Q) && b.Q.ContainedIn(c.Q) {
			return a.Q.ContainedIn(c.Q)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestMinimizePreservesEquivalence: the core is equivalent to the original
// and no larger.
func TestMinimizePreservesEquivalence(t *testing.T) {
	f := func(rq randomCQ) bool {
		m := rq.Q.Minimize()
		return len(m.Body) <= len(rq.Q.Body) && m.Equivalent(rq.Q)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestMinimizeIdempotent: minimizing twice changes nothing further.
func TestMinimizeIdempotent(t *testing.T) {
	f := func(rq randomCQ) bool {
		m := rq.Q.Minimize()
		return len(m.Minimize().Body) == len(m.Body)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestCanonicalPreservesSemantics: canonical renaming yields an equivalent
// query whose variables all use the V-namespace, and plain Canonical (no
// body reordering) is idempotent.
func TestCanonicalPreservesSemantics(t *testing.T) {
	f := func(rq randomCQ) bool {
		c := rq.Q.SortBody().Canonical()
		if !c.Equivalent(rq.Q) {
			return false
		}
		for _, v := range logic.VarsOf(append([]logic.Atom{c.Head}, c.Body...)) {
			if v.Name[0] != 'V' {
				return false
			}
		}
		// Without reordering, renaming is already canonical.
		return c.Canonical().Key() == c.Key()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestDedupKeySound: DedupKey is a dedup FAST PATH — a collision must mean
// semantic equivalence (soundness). The converse need not hold: symmetric
// queries may hash apart under renaming, which only costs the rewriting
// pool a semantic containment check, never correctness. The test asserts
// soundness and that the common case (alpha variant, same atom order after
// sorting) collides.
func TestDedupKeySound(t *testing.T) {
	f := func(a, b randomCQ) bool {
		if a.Q.DedupKey() == b.Q.DedupKey() {
			return a.Q.Equivalent(b.Q)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
	// Alpha variants that preserve name order must collide.
	base := MustNew(logic.NewAtom("q", logic.NewVar("X")),
		[]logic.Atom{
			logic.NewAtom("r", logic.NewVar("X"), logic.NewVar("Y")),
			logic.NewAtom("s", logic.NewVar("Y")),
		})
	variant := MustNew(logic.NewAtom("q", logic.NewVar("U")),
		[]logic.Atom{
			logic.NewAtom("r", logic.NewVar("U"), logic.NewVar("V")),
			logic.NewAtom("s", logic.NewVar("V")),
		})
	if base.DedupKey() != variant.DedupKey() {
		t.Error("order-preserving alpha variants must share dedup keys")
	}
}

// TestPruneSoundness: pruning a UCQ preserves equivalence.
func TestPruneSoundness(t *testing.T) {
	f := func(a, b, c randomCQ) bool {
		// Align heads on a common arity by using boolean projections.
		mk := func(q *CQ) *CQ { return MustNew(logic.NewAtom("q"), q.Body) }
		u := &UCQ{CQs: []*CQ{mk(a.Q), mk(b.Q), mk(c.Q)}}
		p := u.Prune()
		return p.Len() >= 1 && p.Equivalent(u)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
