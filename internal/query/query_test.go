package query

import (
	"testing"

	"repro/internal/logic"
)

func v(n string) logic.Term { return logic.NewVar(n) }
func c(n string) logic.Term { return logic.NewConst(n) }
func at(p string, args ...logic.Term) logic.Atom {
	return logic.NewAtom(p, args...)
}

func cq(head logic.Atom, body ...logic.Atom) *CQ { return MustNew(head, body) }

func TestValidate(t *testing.T) {
	if _, err := New(at("q", v("X")), nil); err == nil {
		t.Error("empty body must be rejected")
	}
	if _, err := New(at("q", v("X")), []logic.Atom{at("r", v("Y"))}); err == nil {
		t.Error("unsafe head variable must be rejected")
	}
	if _, err := New(at("q", logic.NewNull("n")), []logic.Atom{at("r", v("Y"))}); err == nil {
		t.Error("null in head must be rejected")
	}
	if _, err := New(at("q", c("a")), []logic.Atom{at("r", v("Y"))}); err != nil {
		t.Error("constant in head is fine:", err)
	}
}

func TestVariableClassification(t *testing.T) {
	q := cq(at("q", v("X")), at("r", v("X"), v("Y")), at("s", v("Y"), v("Z")))
	if got := q.AnswerVars(); len(got) != 1 || got[0] != v("X") {
		t.Errorf("AnswerVars = %v", got)
	}
	ex := q.ExistentialVars()
	if len(ex) != 2 || ex[0] != v("Y") || ex[1] != v("Z") {
		t.Errorf("ExistentialVars = %v", ex)
	}
	// Y occurs in two atoms => NLE; Z only in one.
	nle := q.NLEVars()
	if len(nle) != 1 || nle[0] != v("Y") {
		t.Errorf("NLEVars = %v, want [Y]", nle)
	}
}

func TestCanonicalRenamingInvariance(t *testing.T) {
	q1 := cq(at("q", v("X")), at("r", v("X"), v("Y")))
	q2 := cq(at("q", v("A")), at("r", v("A"), v("B")))
	if q1.Canonical().Key() != q2.Canonical().Key() {
		t.Error("alpha-equivalent queries must share canonical keys")
	}
	q3 := cq(at("q", v("X")), at("r", v("Y"), v("X")))
	if q1.Canonical().Key() == q3.Canonical().Key() {
		t.Error("different variable patterns must not collide")
	}
}

func TestDedupKeyOrderInvariance(t *testing.T) {
	q1 := cq(at("q", v("X")), at("r", v("X"), v("Y")), at("s", v("Y")))
	q2 := cq(at("q", v("A")), at("s", v("B")), at("r", v("A"), v("B")))
	if q1.DedupKey() != q2.DedupKey() {
		t.Error("DedupKey must be invariant under atom reordering + renaming")
	}
}

func TestContainment(t *testing.T) {
	// q1: q(X) :- r(X,Y). q2: q(X) :- r(X,X). q2 ⊆ q1 but not conversely.
	q1 := cq(at("q", v("X")), at("r", v("X"), v("Y")))
	q2 := cq(at("q", v("X")), at("r", v("X"), v("X")))
	if !q2.ContainedIn(q1) {
		t.Error("r(X,X) ⊆ r(X,Y) expected")
	}
	if q1.ContainedIn(q2) {
		t.Error("r(X,Y) ⊄ r(X,X)")
	}
}

func TestContainmentWithConstants(t *testing.T) {
	qa := cq(at("q", v("X")), at("r", v("X"), c("a")))
	qv := cq(at("q", v("X")), at("r", v("X"), v("Y")))
	if !qa.ContainedIn(qv) {
		t.Error("r(X,a) ⊆ r(X,Y)")
	}
	if qv.ContainedIn(qa) {
		t.Error("r(X,Y) ⊄ r(X,a)")
	}
}

func TestContainmentRespectsHead(t *testing.T) {
	// Same body, different answer variable: not contained.
	q1 := cq(at("q", v("X")), at("r", v("X"), v("Y")))
	q2 := cq(at("q", v("Y")), at("r", v("X"), v("Y")))
	if q1.ContainedIn(q2) || q2.ContainedIn(q1) {
		t.Error("projection on different positions must not be contained")
	}
}

func TestContainmentDifferentPredicateOrArity(t *testing.T) {
	q1 := cq(at("q", v("X")), at("r", v("X")))
	q2 := cq(at("p", v("X")), at("r", v("X")))
	if q1.ContainedIn(q2) {
		t.Error("different head predicates are incomparable")
	}
	q3 := cq(at("q", v("X"), v("X")), at("r", v("X")))
	if q1.ContainedIn(q3) {
		t.Error("different arities are incomparable")
	}
}

func TestContainmentExtraAtomIsMoreSpecific(t *testing.T) {
	q1 := cq(at("q", v("X")), at("r", v("X"), v("Y")), at("s", v("Y")))
	q2 := cq(at("q", v("X")), at("r", v("X"), v("Y")))
	if !q1.ContainedIn(q2) {
		t.Error("adding atoms restricts: q1 ⊆ q2")
	}
	if q2.ContainedIn(q1) {
		t.Error("q2 ⊄ q1")
	}
}

func TestEquivalentAlphaRenaming(t *testing.T) {
	q1 := cq(at("q", v("X")), at("r", v("X"), v("Y")))
	q2 := cq(at("q", v("U")), at("r", v("U"), v("W")))
	if !q1.Equivalent(q2) {
		t.Error("alpha-equivalent CQs must be Equivalent")
	}
}

func TestMinimizeRemovesRedundantAtom(t *testing.T) {
	// q(X) :- r(X,Y), r(X,Z): the second atom is redundant.
	q := cq(at("q", v("X")), at("r", v("X"), v("Y")), at("r", v("X"), v("Z")))
	m := q.Minimize()
	if len(m.Body) != 1 {
		t.Errorf("Minimize left %d atoms, want 1: %v", len(m.Body), m)
	}
	if !m.Equivalent(q) {
		t.Error("Minimize must preserve equivalence")
	}
}

func TestMinimizeKeepsNeededAtoms(t *testing.T) {
	q := cq(at("q", v("X")), at("r", v("X"), v("Y")), at("s", v("Y")))
	m := q.Minimize()
	if len(m.Body) != 2 {
		t.Errorf("Minimize must keep both atoms, got %v", m)
	}
}

func TestMinimizeRepeatedVarCore(t *testing.T) {
	// q() :- e(X,Y), e(Y,X), e(Z,Z): hom Z<-..., actually e(X,Y),e(Y,X)
	// folds onto e(Z,Z) via X=Y=Z, so the core is e(Z,Z).
	q := cq(at("q"), at("e", v("X"), v("Y")), at("e", v("Y"), v("X")), at("e", v("Z"), v("Z")))
	m := q.Minimize()
	if len(m.Body) != 1 {
		t.Errorf("core should be a single atom, got %v", m)
	}
}

func TestUCQValidate(t *testing.T) {
	q1 := cq(at("q", v("X")), at("r", v("X")))
	q2 := cq(at("q", v("X"), v("Y")), at("r2", v("X"), v("Y")))
	if _, err := NewUCQ(q1, q2); err == nil {
		t.Error("arity mismatch must be rejected")
	}
	if _, err := NewUCQ(); err == nil {
		t.Error("empty UCQ must be rejected")
	}
}

func TestUCQPrune(t *testing.T) {
	gen := cq(at("q", v("X")), at("r", v("X"), v("Y")))
	spec := cq(at("q", v("X")), at("r", v("X"), v("X")))
	alpha := cq(at("q", v("A")), at("r", v("A"), v("B")))
	u := MustNewUCQ(gen, spec, alpha)
	p := u.Prune()
	if p.Len() != 1 {
		t.Fatalf("Prune left %d disjuncts, want 1: %v", p.Len(), p)
	}
	if !p.CQs[0].Equivalent(gen) {
		t.Error("the most general disjunct must survive")
	}
}

func TestUCQContainmentAndEquivalence(t *testing.T) {
	q1 := cq(at("q", v("X")), at("r", v("X"), v("X")))
	q2 := cq(at("q", v("X")), at("r", v("X"), v("Y")))
	small := MustNewUCQ(q1)
	big := MustNewUCQ(q1, q2)
	if !small.ContainedIn(big) {
		t.Error("small ⊆ big")
	}
	if big.ContainedIn(small) {
		t.Error("big ⊄ small")
	}
	if !big.Equivalent(MustNewUCQ(q2)) {
		t.Error("big is equivalent to just the general disjunct")
	}
}

func TestApplyDoesNotMutate(t *testing.T) {
	q := cq(at("q", v("X")), at("r", v("X"), v("Y")))
	s := logic.Subst{v("X"): c("a")}
	q2 := q.Apply(s)
	if q.Head.Args[0] != v("X") {
		t.Error("Apply must not mutate the receiver")
	}
	if q2.Head.Args[0] != c("a") {
		t.Error("Apply must substitute in the copy")
	}
}

func TestFreezeProducesGroundBody(t *testing.T) {
	q := cq(at("q", v("X")), at("r", v("X"), v("Y")), at("s", v("Y"), c("k")))
	head, body := q.Freeze()
	for _, a := range body {
		if !a.IsGround() {
			t.Errorf("frozen body atom %v not ground", a)
		}
	}
	if head.Args[0].IsVar() {
		t.Error("frozen head must be ground")
	}
	// Shared variable Y must freeze to the same constant in both atoms.
	if body[0].Args[1] != body[1].Args[0] {
		t.Error("shared variable must freeze consistently")
	}
	if body[1].Args[1] != c("k") {
		t.Error("constants must be preserved by Freeze")
	}
}

func TestStringRendering(t *testing.T) {
	q := cq(at("q", v("X")), at("r", v("X"), c("a")))
	if got := q.String(); got != "q(X) :- r(X, a) ." {
		t.Errorf("String = %q", got)
	}
	u := MustNewUCQ(q, q)
	if got := u.String(); got != "q(X) :- r(X, a) .\nq(X) :- r(X, a) ." {
		t.Errorf("UCQ String = %q", got)
	}
}

func TestCanonicalStableOnCanonicalInput(t *testing.T) {
	// Regression: inputs already using Vn names must canonicalize correctly
	// (a naive rename desynchronizes on V1->V1 no-ops and Walk chains).
	q := cq(at("q"), at("r", v("V1"), v("rw#9")), at("t", v("V1"), c("a")))
	got := q.Canonical()
	want := cq(at("q"), at("r", v("V1"), v("V2")), at("t", v("V1"), c("a")))
	if got.Key() != want.Key() {
		t.Errorf("Canonical = %v, want %v", got, want)
	}
	// Idempotence: canonicalizing twice is a fixpoint.
	if got.Canonical().Key() != got.Key() {
		t.Errorf("Canonical not idempotent: %v vs %v", got.Canonical(), got)
	}
}

func TestCanonicalSwappedVnNames(t *testing.T) {
	// V2 occurs before V1 in the input: renaming must swap them safely.
	q := cq(at("q", v("V2"), v("V1")), at("r", v("V2"), v("V1")))
	got := q.Canonical()
	want := cq(at("q", v("V1"), v("V2")), at("r", v("V1"), v("V2")))
	if got.Key() != want.Key() {
		t.Errorf("Canonical = %v, want %v", got, want)
	}
}
