// Package grd implements the graph of rule dependencies (Baget, Leclère,
// Mugnier & Salvat 2011), one of the previously known decidability tools the
// paper compares the WR class against. A rule R2 depends on R1 when applying
// R1 can trigger a new application of R2 — decided by a piece-unification
// test between R1's head and R2's body. Sets with an acyclic GRD have
// terminating (bounded) rewritings and chases.
package grd

import (
	"sort"
	"strings"

	"repro/internal/dependency"
	"repro/internal/logic"
)

// Graph is a graph of rule dependencies: vertices are rules, and an edge
// R1 → R2 states that R2 depends on R1.
type Graph struct {
	rules []*dependency.TGD
	// adj[i] lists indexes j such that rule j depends on rule i.
	adj map[int][]int
}

// Build computes the dependency graph of the set.
func Build(set *dependency.Set) *Graph {
	g := &Graph{rules: set.Rules, adj: make(map[int][]int)}
	gen := logic.NewVarGen("grd")
	for i, r1 := range set.Rules {
		for j, r2 := range set.Rules {
			if Depends(r1, r2, gen) {
				g.adj[i] = append(g.adj[i], j)
			}
		}
	}
	for i := range g.adj {
		sort.Ints(g.adj[i])
	}
	return g
}

// Depends reports whether r2 depends on r1: some atom of r2's body unifies
// with some atom of r1's head such that existential head variables of r1
// unify only with variables of r2 that could be mapped to the invented
// nulls (not constants, not repeated-demand positions requiring equality
// with frontier terms). This is the standard sufficient test by piece
// unification on single atoms.
func Depends(r1, r2 *dependency.TGD, gen *logic.VarGen) bool {
	a := r1.Rename(gen)
	b := r2.Rename(gen)
	existHead := make(map[logic.Term]bool)
	for _, v := range a.ExistentialHead() {
		existHead[v] = true
	}
	frontierA := make(map[logic.Term]bool)
	for _, v := range a.Distinguished() {
		frontierA[v] = true
	}
	for _, h := range a.Head {
		for _, bb := range b.Body {
			u := logic.NewUnifier()
			if !u.UnifyAtoms(h, bb) {
				continue
			}
			ok := true
			for e := range existHead {
				for _, member := range u.ClassOf(e) {
					if member == e {
						continue
					}
					// A null invented for e cannot equal a constant or a
					// frontier value of r1; unification demanding that is
					// not a real trigger.
					if member.IsRigid() || frontierA[member] || existHead[member] {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}

// DependsOn returns the indexes of rules depending on rule i.
func (g *Graph) DependsOn(i int) []int { return g.adj[i] }

// Acyclic reports whether the dependency graph has no directed cycle
// (self-loops count as cycles).
func (g *Graph) Acyclic() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.rules))
	var visit func(int) bool
	visit = func(i int) bool {
		color[i] = gray
		for _, j := range g.adj[i] {
			switch color[j] {
			case gray:
				return false
			case white:
				if !visit(j) {
					return false
				}
			}
		}
		color[i] = black
		return true
	}
	for i := range g.rules {
		if color[i] == white && !visit(i) {
			return false
		}
	}
	return true
}

// Cycle returns the labels of one rule cycle if any exists.
func (g *Graph) Cycle() []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.rules))
	var path []int
	var found []int
	var visit func(int) bool
	visit = func(i int) bool {
		color[i] = gray
		path = append(path, i)
		for _, j := range g.adj[i] {
			if color[j] == gray {
				// Extract the cycle suffix from path.
				for k, p := range path {
					if p == j {
						found = append([]int{}, path[k:]...)
						return false
					}
				}
				found = []int{j}
				return false
			}
			if color[j] == white && !visit(j) {
				return false
			}
		}
		color[i] = black
		path = path[:len(path)-1]
		return true
	}
	for i := range g.rules {
		if color[i] == white && !visit(i) {
			break
		}
	}
	labels := make([]string, len(found))
	for i, idx := range found {
		labels[i] = g.rules[idx].Label
	}
	return labels
}

// String renders the dependency edges by rule label.
func (g *Graph) String() string {
	var lines []string
	for i := range g.rules {
		for _, j := range g.adj[i] {
			lines = append(lines, g.rules[i].Label+" -> "+g.rules[j].Label)
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
