package grd

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/parser"
)

func TestDependsBasic(t *testing.T) {
	set := parser.MustParseRules(`
a(X) -> b(X) .
b(X) -> c(X) .
`)
	gen := logic.NewVarGen("t")
	if !Depends(set.Rules[0], set.Rules[1], gen) {
		t.Error("R2 depends on R1 (b feeds b)")
	}
	if Depends(set.Rules[1], set.Rules[0], gen) {
		t.Error("R1 does not depend on R2 (a is not produced)")
	}
}

func TestDependsBlockedByConstant(t *testing.T) {
	// R1 invents a null at q[2]; R2 demands the constant k there: a null
	// can never equal a constant, so R2 does not depend on R1.
	set := parser.MustParseRules(`
p(X) -> q(X,Y) .
q(X, "k") -> r(X) .
`)
	gen := logic.NewVarGen("t")
	if Depends(set.Rules[0], set.Rules[1], gen) {
		t.Error("constant demand on an existential position is not a trigger")
	}
}

func TestDependsBlockedByRepeatedExistential(t *testing.T) {
	// R1 invents distinct nulls Y,Z; R2 demands q(W,W): nulls are never
	// equal to the frontier value, so no dependency.
	set := parser.MustParseRules(`
p(X) -> q(X,Y) .
q(W,W) -> r(W) .
`)
	gen := logic.NewVarGen("t")
	if Depends(set.Rules[0], set.Rules[1], gen) {
		t.Error("q(W,W) cannot be triggered by q(frontier, null)")
	}
}

func TestAcyclicAndCycle(t *testing.T) {
	chain := Build(parser.MustParseRules(`a(X) -> b(X) . b(X) -> c(X) .`))
	if !chain.Acyclic() {
		t.Error("chain must be acyclic")
	}
	if len(chain.Cycle()) != 0 {
		t.Error("acyclic graph must have no cycle witness")
	}
	loop := Build(parser.MustParseRules(`a(X) -> b(X) . b(X) -> a(X) .`))
	if loop.Acyclic() {
		t.Error("mutual recursion must be cyclic")
	}
	cyc := loop.Cycle()
	if len(cyc) != 2 {
		t.Errorf("cycle = %v, want 2 rules", cyc)
	}
}

func TestSelfLoop(t *testing.T) {
	g := Build(parser.MustParseRules(`e(X,Y), e(Y,Z) -> e(X,Z) .`))
	if g.Acyclic() {
		t.Error("transitive closure rule depends on itself")
	}
	if got := g.Cycle(); len(got) != 1 || got[0] != "R1" {
		t.Errorf("self-loop cycle = %v", got)
	}
}

func TestGraphString(t *testing.T) {
	g := Build(parser.MustParseRules(`a(X) -> b(X) . b(X) -> c(X) .`))
	if got := g.String(); !strings.Contains(got, "R1 -> R2") {
		t.Errorf("String = %q", got)
	}
}

func TestDependsOn(t *testing.T) {
	g := Build(parser.MustParseRules(`a(X) -> b(X) . b(X) -> c(X) . b(X) -> d(X) .`))
	deps := g.DependsOn(0)
	if len(deps) != 2 || deps[0] != 1 || deps[1] != 2 {
		t.Errorf("DependsOn(0) = %v, want [1 2]", deps)
	}
}
