package repro

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/logic"
)

// factSrc renders ground atoms as program text for AddFact.
func factSrc(atoms []logic.Atom) string {
	var b strings.Builder
	for _, a := range atoms {
		b.WriteString(a.String())
		b.WriteString(" .\n")
	}
	return b.String()
}

// atomicQueries returns one atomic query per predicate of the ontology.
func atomicQueries(t *testing.T, ont *Ontology) []string {
	t.Helper()
	preds, err := ont.Rules().Predicates()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for p, arity := range preds {
		vars := make([]string, arity)
		for i := range vars {
			vars[i] = fmt.Sprintf("X%d", i+1)
		}
		out = append(out, fmt.Sprintf("q(%s) :- %s(%s) .", strings.Join(vars, ","), p, strings.Join(vars, ",")))
	}
	return out
}

// TestPropertyAddFactIncrementalEqualsScratch is the maintenance-correctness
// property at the public API: over seeded random ontologies, feeding the
// facts in random interleavings of AddFact batches — with chase-mode Answer
// calls in between, so the cached materialization is repeatedly extended
// rather than rebuilt — must end with exactly the answers of an ontology
// chased from scratch on the full data. Sequential and parallel.
func TestPropertyAddFactIncrementalEqualsScratch(t *testing.T) {
	families := []datagen.Family{datagen.FamilyLinear, datagen.FamilyChain, datagen.FamilySticky}
	for _, fam := range families {
		for seed := int64(1); seed <= 5; seed++ {
			for _, par := range []int{1, 4} {
				t.Run(fmt.Sprintf("%v/seed=%d/par=%d", fam, seed, par), func(t *testing.T) {
					set := datagen.Rules(datagen.Config{Family: fam, Rules: 5, Seed: seed})
					data := datagen.Instance(set, 20, 8, seed)
					atoms := data.Atoms()

					rng := rand.New(rand.NewSource(seed * 7919))
					rng.Shuffle(len(atoms), func(i, j int) { atoms[i], atoms[j] = atoms[j], atoms[i] })

					// Start with a random prefix, feed the rest in random
					// batches interleaved with answering.
					cut := len(atoms) / 3
					ontInc, err := Parse(set.String() + "\n" + factSrc(atoms[:cut]))
					if err != nil {
						t.Fatal(err)
					}
					opts := Options{Mode: ModeChase, Parallelism: par}
					queries := atomicQueries(t, ontInc)
					if _, err := ontInc.AnswerOptions(queries[0], opts); err != nil {
						t.Skipf("initial chase over budget: %v", err)
					}
					rest := atoms[cut:]
					for len(rest) > 0 {
						n := 1 + rng.Intn(5)
						if n > len(rest) {
							n = len(rest)
						}
						if err := ontInc.AddFact(factSrc(rest[:n])); err != nil {
							t.Fatal(err)
						}
						rest = rest[n:]
						if rng.Intn(2) == 0 {
							if _, err := ontInc.AnswerOptions(queries[rng.Intn(len(queries))], opts); err != nil {
								t.Fatal(err)
							}
						}
					}

					ontScratch, err := Parse(set.String() + "\n" + factSrc(atoms))
					if err != nil {
						t.Fatal(err)
					}
					for _, q := range queries {
						inc, errInc := ontInc.AnswerOptions(q, opts)
						scr, errScr := ontScratch.AnswerOptions(q, opts)
						if (errInc == nil) != (errScr == nil) {
							t.Fatalf("%s: error divergence: inc=%v scratch=%v", q, errInc, errScr)
						}
						if errInc != nil {
							continue
						}
						if !inc.Equal(scr) {
							t.Errorf("%s: answers differ:\nincremental:\n%s\nscratch:\n%s", q, inc, scr)
						}
					}
					st := ontInc.MaterializationStats()
					if !st.Cached || st.Epoch < 2 {
						t.Errorf("stats = %+v, want cached materialization with ≥ 2 epochs", st)
					}
				})
			}
		}
	}
}

// TestIncrementalStepsProportionalToDelta asserts, through the public
// counters, that re-answering after a small AddFact performs chase work
// proportional to the delta, not to the instance: the increment's steps must
// be a handful while the initial build's were hundreds, and cumulative steps
// must be exactly initial + increments (nothing re-fired from scratch).
func TestIncrementalStepsProportionalToDelta(t *testing.T) {
	ont := MustParse(datagen.University().String() + "\n" + datagen.UniversityData(16, 1).String())
	const q = `q(X) :- person(X) .`
	before, err := ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	s0 := ont.MaterializationStats()
	if !s0.Cached || !s0.Terminated || s0.Epoch != 1 {
		t.Fatalf("after first answer: stats = %+v", s0)
	}
	if s0.LastSteps < 100 {
		t.Fatalf("initial build fired %d steps; workload too small for the proportionality claim", s0.LastSteps)
	}

	if err := ont.AddFact(`undergraduateStudent(newcomer) .`); err != nil {
		t.Fatal(err)
	}
	after, err := ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	s1 := ont.MaterializationStats()
	if s1.Epoch != 2 {
		t.Errorf("Epoch = %d, want 2 (one incremental extension)", s1.Epoch)
	}
	if s1.LastSteps == 0 || s1.LastSteps > 10 {
		t.Errorf("incremental LastSteps = %d, want 1..10 (initial build: %d)", s1.LastSteps, s0.LastSteps)
	}
	if s1.Steps != s0.Steps+s1.LastSteps {
		t.Errorf("cumulative Steps = %d, want initial %d + increment %d", s1.Steps, s0.Steps, s1.LastSteps)
	}
	if after.Len() != before.Len()+1 {
		t.Errorf("answers: %d -> %d, want exactly one new person", before.Len(), after.Len())
	}
	if !after.Contains([]logic.Term{logic.NewConst("newcomer")}) {
		t.Error("person(newcomer) must be a certain answer after AddFact")
	}
}

// TestAddFactAlreadyDerivedIsFree: inserting a fact the chase had already
// derived extends nothing — epoch bumps, zero steps, answers unchanged.
func TestAddFactAlreadyDerivedIsFree(t *testing.T) {
	ont := MustParse(`
student(X) -> person(X) .
student(alice) .
`)
	if _, err := ont.AnswerMode(`q(X) :- person(X) .`, ModeChase); err != nil {
		t.Fatal(err)
	}
	if err := ont.AddFact(`person(alice) .`); err != nil {
		t.Fatal(err)
	}
	st := ont.MaterializationStats()
	if st.Epoch != 2 || st.LastSteps != 0 {
		t.Errorf("stats = %+v, want epoch 2 with 0 incremental steps", st)
	}
	ans, err := ont.AnswerMode(`q(X) :- person(X) .`, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 {
		t.Errorf("answers = %d, want 1", ans.Len())
	}
}

// TestLoadCSVMaintainsMaterialization: bulk CSV loads must extend the
// cached materialization like AddFact does — chase answers after a load must
// see the loaded tuples' consequences (regression: the cache used to be
// served stale).
func TestLoadCSVMaintainsMaterialization(t *testing.T) {
	ont := MustParse(`
student(X) -> person(X) .
student(alice) .
`)
	const q = `q(X) :- person(X) .`
	if _, err := ont.AnswerMode(q, ModeChase); err != nil {
		t.Fatal(err)
	}
	n, err := ont.LoadCSV("student", strings.NewReader("bob\ncarol\nalice\n"))
	if err != nil || n != 2 {
		t.Fatalf("LoadCSV: n=%d err=%v (alice is a duplicate)", n, err)
	}
	ans, err := ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 3 {
		t.Errorf("persons after load = %d, want 3:\n%s", ans.Len(), ans)
	}
	st := ont.MaterializationStats()
	if st.Epoch != 2 || st.LastSteps != 2 {
		t.Errorf("stats = %+v, want epoch 2 with a 2-step increment", st)
	}
	// A malformed load is atomic and leaves the cache consistent.
	if _, err := ont.LoadCSV("student", strings.NewReader("x,y\nz\n")); err == nil {
		t.Fatal("ragged CSV must error")
	}
	ans, err = ont.AnswerMode(q, ModeChase)
	if err != nil || ans.Len() != 3 {
		t.Errorf("after failed load: answers=%v err=%v, want the 3 persons", ans, err)
	}
}

// TestModeAutoFallsBackToChase: when the classification certifies
// FO-rewritability but the rewriting hits its budget, ModeAuto must fall
// back to materialization instead of surfacing the budget error; only an
// explicit ModeRewrite surfaces it.
func TestModeAutoFallsBackToChase(t *testing.T) {
	ont := MustParse(datagen.University().String() + "\n" + datagen.UniversityData(1, 1).String())
	if !ont.Classify().FORewritable {
		t.Fatal("university ontology must be FO-rewritable")
	}
	const q = `q(X) :- person(X) .`
	// person(X) rewrites to several disjuncts; a budget of 2 cannot hold it.
	tiny := Options{Mode: ModeAuto, MaxRewriteCQs: 2}
	auto, err := ont.AnswerOptions(q, tiny)
	if err != nil {
		t.Fatalf("ModeAuto must fall back to the chase, got error: %v", err)
	}
	want, err := ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	if !auto.Equal(want) {
		t.Errorf("fallback answers differ from chase answers:\nauto:\n%s\nchase:\n%s", auto, want)
	}
	if _, err := ont.AnswerOptions(q, Options{Mode: ModeRewrite, MaxRewriteCQs: 2}); err == nil {
		t.Error("explicit ModeRewrite must surface the budget error")
	}
}

// TestChaseBudgetsThreadedThroughOptions: Options.MaxSteps reaches the chase
// (tiny budget fails; raising it succeeds and rebuilds the cache).
func TestChaseBudgetsThreadedThroughOptions(t *testing.T) {
	ont := MustParse(datagen.University().String() + "\n" + datagen.UniversityData(4, 1).String())
	const q = `q(X) :- person(X) .`
	if _, err := ont.AnswerOptions(q, Options{Mode: ModeChase, MaxSteps: 3}); err == nil {
		t.Fatal("MaxSteps=3 must truncate the chase and error")
	}
	if st := ont.MaterializationStats(); st.Terminated {
		t.Errorf("truncated cache must not claim termination: %+v", st)
	}
	ans, err := ont.AnswerOptions(q, Options{Mode: ModeChase})
	if err != nil {
		t.Fatalf("default budget must rebuild and succeed: %v", err)
	}
	if ans.Len() == 0 {
		t.Error("no answers after rebuild")
	}
	// A repeated tiny-budget request is served the cached (terminated)
	// materialization: a fixpoint is a fixpoint under any budget.
	if _, err := ont.AnswerOptions(q, Options{Mode: ModeChase, MaxSteps: 3}); err != nil {
		t.Errorf("terminated cache must serve smaller budgets: %v", err)
	}
}

// TestOutOfBandDataMutationForcesRebuild: inserting through the Data()
// accessor bypasses the lock and the cache, but the size guard must detect
// it and rebuild instead of serving stale answers.
func TestOutOfBandDataMutationForcesRebuild(t *testing.T) {
	ont := MustParse(`
student(X) -> person(X) .
student(alice) .
`)
	const q = `q(X) :- person(X) .`
	if _, err := ont.AnswerMode(q, ModeChase); err != nil {
		t.Fatal(err)
	}
	e0 := ont.MaterializationStats().Epoch
	if err := ont.Data().InsertAtom(logic.NewAtom("student", logic.NewConst("rogue"))); err != nil {
		t.Fatal(err)
	}
	ans, err := ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Contains([]logic.Term{logic.NewConst("rogue")}) {
		t.Errorf("stale cache served after out-of-band insert:\n%s", ans)
	}
	if e1 := ont.MaterializationStats().Epoch; e1 <= e0 {
		t.Errorf("epoch %d -> %d, want monotonic bump on rebuild", e0, e1)
	}

	// An AddFact BETWEEN the out-of-band insert and the next answer must not
	// extend the stale cache and mask the size guard (regression).
	if err := ont.Data().InsertAtom(logic.NewAtom("student", logic.NewConst("rogue2"))); err != nil {
		t.Fatal(err)
	}
	if err := ont.AddFact(`student(dana) .`); err != nil {
		t.Fatal(err)
	}
	ans, err = ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	for _, who := range []string{"rogue2", "dana"} {
		if !ans.Contains([]logic.Term{logic.NewConst(who)}) {
			t.Errorf("person(%s) missing: AddFact extended a stale cache:\n%s", who, ans)
		}
	}
}

// TestAnswerApproxServesCachedFixpoint: once chase-mode answering cached a
// terminated materialization, AnswerApprox must serve the chase side from it
// (exact) instead of re-chasing per call.
func TestAnswerApproxServesCachedFixpoint(t *testing.T) {
	// Non-FO-rewritable within a tiny rewriting budget, but chase-terminating.
	ont := MustParse(datagen.University().String() + "\n" + datagen.UniversityData(2, 1).String())
	const q = `q(X) :- person(X) .`
	want, err := ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	s0 := ont.MaterializationStats()
	ap, err := ont.AnswerApprox(q, ApproxOptions{MaxCQs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ap.Exact || !ap.ChaseTerminated {
		t.Errorf("approx = %+v, want exact via chase", ap)
	}
	if !ap.Answers.Equal(want) {
		t.Errorf("approx answers differ from chase answers:\n%s\nvs\n%s", ap.Answers, want)
	}
	if s1 := ont.MaterializationStats(); s1.Steps != s0.Steps {
		t.Errorf("AnswerApprox re-chased: steps %d -> %d", s0.Steps, s1.Steps)
	}
}

// TestAnswerApproxDonatesFixpointToCache: a cold AnswerApprox whose chase
// terminates must install the materialization, so the second call (and any
// chase-mode Answer) is a cache hit instead of another full chase.
func TestAnswerApproxDonatesFixpointToCache(t *testing.T) {
	ont := MustParse(datagen.University().String() + "\n" + datagen.UniversityData(2, 1).String())
	const q = `q(X) :- person(X) .`
	ap1, err := ont.AnswerApprox(q, ApproxOptions{MaxCQs: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := ont.MaterializationStats()
	if !st.Cached || !st.Terminated {
		t.Fatalf("AnswerApprox must donate its fixpoint: stats = %+v", st)
	}
	ap2, err := ont.AnswerApprox(q, ApproxOptions{MaxCQs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s2 := ont.MaterializationStats(); s2.Steps != st.Steps || s2.Epoch != st.Epoch {
		t.Errorf("second AnswerApprox re-chased: %+v -> %+v", st, s2)
	}
	if !ap1.Answers.Equal(ap2.Answers) {
		t.Errorf("answers differ across calls:\n%s\nvs\n%s", ap1.Answers, ap2.Answers)
	}
}

// TestAddFactBatchAtomic: an arity conflict anywhere in a multi-fact batch
// must reject the whole batch, leaving data, cache and answers untouched.
func TestAddFactBatchAtomic(t *testing.T) {
	ont := MustParse(`
student(X) -> person(X) .
student(alice) .
`)
	const q = `q(X) :- person(X) .`
	if _, err := ont.AnswerMode(q, ModeChase); err != nil {
		t.Fatal(err)
	}
	e0 := ont.MaterializationStats()
	if err := ont.AddFact(`student(bob) . student(x, y) .`); err == nil {
		t.Fatal("arity conflict in batch must error")
	}
	if ont.Data().Relation("student").Len() != 1 {
		t.Error("batch must be all-or-nothing: student(bob) leaked in")
	}
	e1 := ont.MaterializationStats()
	if !e1.Cached || e1.Epoch != e0.Epoch {
		t.Errorf("rejected batch must keep the cache: %+v -> %+v", e0, e1)
	}
	ans, err := ont.AnswerMode(q, ModeChase)
	if err != nil || ans.Len() != 1 {
		t.Errorf("answers after rejected batch: %v err=%v, want just alice", ans, err)
	}
}

// TestTruncatedAnswerUnderWriterStreamTerminates: a chase that always hits
// its budget, plus a writer stream that keeps dropping the truncated cache,
// must still make AnswerOptions return the budget error after bounded
// attempts (regression: the rebuild loop could starve).
func TestTruncatedAnswerUnderWriterStreamTerminates(t *testing.T) {
	ont := MustParse(`
person(X) -> hasParent(X, Y) .
hasParent(X, Y) -> person(Y) .
person(eve) .
`)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := ont.AddFact(fmt.Sprintf("person(w%d) .", i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	if _, err := ont.AnswerOptions(`q(X) :- person(X) .`, Options{Mode: ModeChase, MaxSteps: 10}); err == nil {
		t.Error("truncated chase must surface the budget error")
	}
	<-done
}

// TestConcurrentAnswerAndAddFact hammers the epoch/RWMutex seam: readers
// answer in chase mode over frozen snapshots while a writer streams AddFact
// deltas. Run under -race this is the coordination test; afterwards the
// answers must equal a from-scratch chase of the final data.
func TestConcurrentAnswerAndAddFact(t *testing.T) {
	base := datagen.University().String() + "\n" + datagen.UniversityData(2, 1).String()
	ont := MustParse(base)
	const q = `q(X) :- person(X) .`
	if _, err := ont.AnswerMode(q, ModeChase); err != nil {
		t.Fatal(err)
	}

	const writers = 20
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < writers; i++ {
			if err := ont.AddFact(fmt.Sprintf("graduateStudent(g%d) .", i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < writers; i++ {
			if _, err := ont.AnswerOptions(q, Options{Mode: ModeChase, Parallelism: 2}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	scratch := MustParse(base)
	for i := 0; i < writers; i++ {
		if err := scratch.AddFact(fmt.Sprintf("graduateStudent(g%d) .", i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scratch.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("concurrent maintenance diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
