// Benchmarks regenerating every figure, example and complexity claim of the
// paper (experiment IDs from DESIGN.md §3). The paper reports no absolute
// numbers — these benches reproduce the *shapes*: graph constructions are
// cheap and polynomial (E1, E2, C1), the P-node graph is costlier but
// feasible (C2), Example 2's rewriting grows without bound (E2), Example 3
// and all SWR sets rewrite to a fixpoint (E3, T1), and rewriting-based
// answering beats chase-based answering as data grows (W1, D1).
package repro

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/chase"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/pnode"
	"repro/internal/posgraph"
	"repro/internal/query"
	"repro/internal/rewrite"
)

// --- E1 / Figure 1: position graph of Example 1 -------------------------

// BenchmarkFigure1PositionGraph builds AG(P) for the paper's Example 1 and
// runs the SWR test (expected: SWR, no dangerous cycle).
func BenchmarkFigure1PositionGraph(b *testing.B) {
	set := parser.MustParseRules(`
s(Y1,Y2,Y3), t(Y4) -> r(Y1,Y3) .
v(Y1,Y2), q(Y2) -> s(Y1,Y3,Y2) .
r(Y1,Y2) -> v(Y1,Y2) .
`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := posgraph.Check(set)
		if !res.SWR {
			b.Fatal("Example 1 must be SWR")
		}
	}
}

// --- E2 / Figure 2: the unbounded chain ---------------------------------

// BenchmarkFigure2UnboundedChain rewrites the paper's q() :- r("a",X) over
// Example 2 at growing budgets; the work grows with the budget because the
// rewriting never completes (the series reproduces Figure 2's failure mode).
func BenchmarkFigure2UnboundedChain(b *testing.B) {
	set := parser.MustParseRules(`
t(Y1,Y2), r(Y3,Y4) -> s(Y1,Y3,Y2) .
s(Y1,Y1,Y2) -> r(Y2,Y3) .
`)
	pq := parser.MustParseQuery(`q() :- r("a", X) .`)
	q := query.MustNew(pq.Head, pq.Body)
	for _, budget := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := rewrite.Rewrite(q, set, rewrite.Options{MaxCQs: budget, Minimize: true})
				if res.Complete {
					b.Fatal("Example 2 must not complete")
				}
			}
		})
	}
}

// --- E2 / Figure 3: P-node graph detects the danger ---------------------

// BenchmarkFigure3PNodeGraph builds the P-node graph for Example 2 and runs
// the WR test (expected: not WR, dangerous d+m+s cycle found).
func BenchmarkFigure3PNodeGraph(b *testing.B) {
	set := parser.MustParseRules(`
t(Y1,Y2), r(Y3,Y4) -> s(Y1,Y3,Y2) .
s(Y1,Y1,Y2) -> r(Y2,Y3) .
`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := pnode.Check(set)
		if res.WR {
			b.Fatal("Example 2 must not be WR")
		}
	}
}

// --- E3: the set only WR captures ----------------------------------------

// BenchmarkExample3 runs both the WR test and a full rewriting over the
// paper's Example 3 (expected: WR; rewriting reaches a fixpoint).
func BenchmarkExample3(b *testing.B) {
	set := parser.MustParseRules(`
r(Y1,Y2) -> t(Y3,Y1,Y1) .
s(Y1,Y2,Y3) -> r(Y1,Y2) .
u(Y1), t(Y1,Y1,Y2) -> s(Y1,Y1,Y2) .
`)
	pq := parser.MustParseQuery(`q(X,Y) :- r(X,Y) .`)
	q := query.MustNew(pq.Head, pq.Body)
	b.Run("wr-check", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !pnode.Check(set).WR {
				b.Fatal("Example 3 must be WR")
			}
		}
	})
	b.Run("rewrite", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !rewrite.Rewrite(q, set, rewrite.DefaultOptions()).Complete {
				b.Fatal("Example 3 rewriting must complete")
			}
		}
	})
}

// --- C1: SWR membership is PTIME -----------------------------------------

// BenchmarkSWRCheckScaling measures the SWR test against growing rule
// counts; the paper claims PTIME membership, and the observed scaling is
// near-linear for these families.
func BenchmarkSWRCheckScaling(b *testing.B) {
	for _, n := range []int{10, 50, 100, 200} {
		set := datagen.Rules(datagen.Config{Family: datagen.FamilyLinear, Rules: n, Seed: 1})
		b.Run(fmt.Sprintf("linear-rules=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				posgraph.Check(set)
			}
		})
	}
	for _, n := range []int{10, 50, 100} {
		set := datagen.Rules(datagen.Config{Family: datagen.FamilyMultilinear, Rules: n, Seed: 1})
		b.Run(fmt.Sprintf("multilinear-rules=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				posgraph.Check(set)
			}
		})
	}
}

// --- C2: WR membership is PSPACE (exponential node space) ---------------

// BenchmarkWRCheckScaling measures the P-node graph construction against
// growing rule counts and arities; growth is visibly steeper than the
// position graph's, matching the PTIME-vs-PSPACE gap the paper reports.
func BenchmarkWRCheckScaling(b *testing.B) {
	for _, n := range []int{5, 10, 20} {
		set := datagen.Rules(datagen.Config{Family: datagen.FamilyLinear, Rules: n, Seed: 1})
		b.Run(fmt.Sprintf("linear-rules=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pnode.Check(set)
			}
		})
	}
	for _, ar := range []int{2, 3, 4} {
		set := datagen.Rules(datagen.Config{Family: datagen.FamilyMultilinear, Rules: 8, MaxArity: ar, Seed: 2})
		b.Run(fmt.Sprintf("multilinear-arity=%d", ar), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pnode.Check(set)
			}
		})
	}
}

// --- T1: SWR implies terminating rewriting ------------------------------

// BenchmarkRewriteHierarchyDepth rewrites an atomic query over class
// hierarchies of growing depth; output size (one disjunct per level) and
// time grow polynomially, never diverging — Theorem 1 at work.
func BenchmarkRewriteHierarchyDepth(b *testing.B) {
	for _, depth := range []int{4, 8, 16, 32} {
		set := datagen.ChainOntology(depth)
		pq := parser.MustParseQuery(fmt.Sprintf(`q(X) :- c%d(X) .`, depth))
		q := query.MustNew(pq.Head, pq.Body)
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := rewrite.Rewrite(q, set, rewrite.DefaultOptions())
				if !res.Complete || res.Kept != depth {
					b.Fatalf("chain rewriting wrong: complete=%v kept=%d", res.Complete, res.Kept)
				}
			}
		})
	}
}

// --- D1 + W1: rewriting vs chase as data grows ---------------------------

// BenchmarkRewritingVsChaseDataScaling answers the same query over the
// university ontology with both techniques at growing data sizes. The
// rewriting is computed once per query (data-independent) and evaluated in
// DBMS fashion; the chase cost grows with the data. The crossover shape —
// rewriting flat-ish, chase growing — is the paper's AC0 argument made
// concrete.
func BenchmarkRewritingVsChaseDataScaling(b *testing.B) {
	rules := datagen.University()
	pq := parser.MustParseQuery(`q(X) :- person(X) .`)
	q := query.MustNew(pq.Head, pq.Body)
	for _, depts := range []int{1, 4, 16} {
		data := datagen.UniversityData(depts, 1)
		b.Run(fmt.Sprintf("rewrite/depts=%d", depts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := rewrite.Rewrite(q, rules, rewrite.DefaultOptions())
				ans := eval.UCQ(res.UCQ, data, eval.Options{FilterNulls: true})
				if ans.Len() == 0 {
					b.Fatal("no answers")
				}
			}
		})
		b.Run(fmt.Sprintf("chase/depts=%d", depts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ans, res := chase.CertainAnswers(query.MustNewUCQ(q), rules, data, chase.Options{})
				if !res.Terminated || ans.Len() == 0 {
					b.Fatal("chase failed")
				}
			}
		})
	}
}

// BenchmarkEvaluationOnly isolates the DBMS-style evaluation of a
// precompiled rewriting — the per-query online cost once the ontology has
// been compiled away (the AC0 data-complexity claim).
func BenchmarkEvaluationOnly(b *testing.B) {
	rules := datagen.University()
	pq := parser.MustParseQuery(`q(X) :- person(X) .`)
	q := query.MustNew(pq.Head, pq.Body)
	res := rewrite.Rewrite(q, rules, rewrite.DefaultOptions())
	if !res.Complete {
		b.Fatal("rewriting must complete")
	}
	for _, depts := range []int{1, 4, 16, 64} {
		data := datagen.UniversityData(depts, 1)
		b.Run(fmt.Sprintf("depts=%d", depts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eval.UCQ(res.UCQ, data, eval.Options{FilterNulls: true})
			}
		})
	}
}

// --- Substrate micro-benchmarks ------------------------------------------

// BenchmarkChaseScaling measures restricted-chase materialization of the
// university ontology against data size (linear in facts for this
// weakly-acyclic-per-component workload).
func BenchmarkChaseScaling(b *testing.B) {
	rules := datagen.University()
	for _, depts := range []int{1, 4, 16} {
		data := datagen.UniversityData(depts, 1)
		b.Run(fmt.Sprintf("depts=%d", depts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := chase.Run(rules, data, chase.Options{})
				if !res.Terminated {
					b.Fatal("chase must terminate")
				}
			}
		})
	}
}

// BenchmarkCQEvaluation measures the join engine on a 3-way join over
// generated data.
func BenchmarkCQEvaluation(b *testing.B) {
	rules := parser.MustParseRules(`
a(X,Y) -> x1(X) .
b(X,Y) -> x2(X) .
c(X,Y) -> x3(X) .
`)
	pq := parser.MustParseQuery(`q(X,W) :- a(X,Y), b(Y,Z), c(Z,W) .`)
	q := query.MustNew(pq.Head, pq.Body)
	for _, n := range []int{100, 1000} {
		data := datagen.Instance(rules, n, n/2, 3)
		b.Run(fmt.Sprintf("tuples=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eval.CQ(q, data, eval.Options{})
			}
		})
	}
}

// --- P1: parallel chase and evaluation -----------------------------------

// BenchmarkParallelChase materializes the university ontology with the
// semi-naive chase at growing worker counts. The workers=1 run is the
// sequential baseline the speedup criterion is measured against; gains
// require actual cores (GOMAXPROCS).
func BenchmarkParallelChase(b *testing.B) {
	rules := datagen.University()
	data := datagen.UniversityData(16, 1)
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := chase.Run(rules, data, chase.Options{Parallelism: p})
				if !res.Terminated {
					b.Fatal("chase must terminate")
				}
			}
		})
	}
}

// BenchmarkParallelUCQEvaluation evaluates a precompiled rewriting (a
// multi-CQ union) at growing worker counts: the CQs run concurrently and
// each join's outer loop is sharded.
func BenchmarkParallelUCQEvaluation(b *testing.B) {
	rules := datagen.University()
	pq := parser.MustParseQuery(`q(X) :- person(X) .`)
	q := query.MustNew(pq.Head, pq.Body)
	res := rewrite.Rewrite(q, rules, rewrite.DefaultOptions())
	if !res.Complete {
		b.Fatal("rewriting must complete")
	}
	data := datagen.UniversityData(64, 1)
	data.EnsureIndexes()
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			var n int
			for i := 0; i < b.N; i++ {
				ans := eval.UCQ(res.UCQ, data, eval.Options{FilterNulls: true, Parallelism: p})
				n = ans.Len()
			}
			b.ReportMetric(float64(n), "answers")
		})
	}
}

// BenchmarkParallelCQJoin shards the outer loop of a single 2-way join.
func BenchmarkParallelCQJoin(b *testing.B) {
	rules := parser.MustParseRules(`a(X,Y) -> x1(X) .`)
	pq := parser.MustParseQuery(`q(X,Z) :- a(X,Y), a(Y,Z) .`)
	q := query.MustNew(pq.Head, pq.Body)
	data := datagen.Instance(rules, 2000, 200, 3)
	data.EnsureIndexes()
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eval.CQ(q, data, eval.Options{Parallelism: p})
			}
		})
	}
}

// --- Q1: compiled plans, planner strategies and the plan cache ------------

// BenchmarkAnswerChase measures steady-state chase-mode answering over a
// warm materialization and a warm plan cache — the server-style repeated
// query. Sub-benchmarks compare the cost-based and greedy planners; the
// single-flight build happens before the timer.
func BenchmarkAnswerChase(b *testing.B) {
	src := datagen.University().String() + "\n" + datagen.UniversityData(16, 1).String()
	for _, q := range []struct{ name, src string }{
		{"atomic", `q(X) :- person(X) .`},
		{"join", `q(X,P) :- advisor(X,P), professor(P), person(X) .`},
	} {
		for _, pl := range []Planner{PlannerGreedy, PlannerCost} {
			b.Run(fmt.Sprintf("%s/planner=%v", q.name, pl), func(b *testing.B) {
				ont := MustParse(src)
				opts := Options{Mode: ModeChase, Planner: pl}
				if _, err := ont.AnswerOptions(q.src, opts); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var n int
				for i := 0; i < b.N; i++ {
					ans, err := ont.AnswerOptions(q.src, opts)
					if err != nil {
						b.Fatal(err)
					}
					n = ans.Len()
				}
				b.ReportMetric(float64(n), "answers")
			})
		}
	}
}

// BenchmarkAnswerRewrite measures steady-state rewrite-mode answering over
// the published base snapshot: the rewriting is recomputed per call
// (data-independent), but the compiled plans of the rewritten UCQ come from
// the per-snapshot plan cache.
func BenchmarkAnswerRewrite(b *testing.B) {
	src := datagen.University().String() + "\n" + datagen.UniversityData(16, 1).String()
	const q = `q(X) :- person(X) .`
	for _, pl := range []Planner{PlannerGreedy, PlannerCost} {
		b.Run(fmt.Sprintf("planner=%v", pl), func(b *testing.B) {
			ont := MustParse(src)
			opts := Options{Mode: ModeRewrite, Planner: pl}
			if _, err := ont.AnswerOptions(q, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ont.AnswerOptions(q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- I1: incremental chase maintenance -----------------------------------

// BenchmarkIncrementalAddFact compares serving a stream of single-fact
// inserts from the incrementally maintained materialization (AddFact resumes
// the chase with just the new fact as delta) against re-chasing the whole
// instance from scratch per insert. Each iteration inserts one new fact and
// re-answers the same query.
func BenchmarkIncrementalAddFact(b *testing.B) {
	rules := datagen.University()
	const q = `q(X) :- person(X) .`
	b.Run("incremental", func(b *testing.B) {
		ont := MustParse(rules.String() + "\n" + datagen.UniversityData(16, 1).String())
		if _, err := ont.AnswerMode(q, ModeChase); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ont.AddFact(fmt.Sprintf("undergraduateStudent(bench%d) .", i)); err != nil {
				b.Fatal(err)
			}
			if _, err := ont.AnswerMode(q, ModeChase); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ont.MaterializationStats().LastSteps), "delta-steps")
	})
	b.Run("scratch", func(b *testing.B) {
		data := datagen.UniversityData(16, 1)
		pq := parser.MustParseQuery(q)
		u := query.MustNewUCQ(query.MustNew(pq.Head, pq.Body))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fact := logic.NewAtom("undergraduateStudent", logic.NewConst(fmt.Sprintf("bench%d", i)))
			if err := data.InsertAtom(fact); err != nil {
				b.Fatal(err)
			}
			ans, res := chase.CertainAnswers(u, rules, data, chase.Options{})
			if !res.Terminated || ans.Len() == 0 {
				b.Fatal("chase failed")
			}
		}
	})
}

// BenchmarkDeleteFact compares DRed-style incremental deletion (DeleteFact
// over-deletes the fact's derived closure via provenance and re-derives
// survivors) against removing the fact and re-chasing the whole instance
// from scratch. Each iteration deletes one pre-inserted fact and re-answers
// the same query; the dred arm's work is proportional to the deleted
// closure, the re-chase arm's to the instance.
func BenchmarkDeleteFact(b *testing.B) {
	rules := datagen.University()
	const q = `q(X) :- person(X) .`
	b.Run("dred", func(b *testing.B) {
		ont := MustParse(rules.String() + "\n" + datagen.UniversityData(16, 1).String())
		for i := 0; i < b.N; i++ {
			if err := ont.AddFact(fmt.Sprintf("undergraduateStudent(bench%d) .", i)); err != nil {
				b.Fatal(err)
			}
		}
		// Prime the lazy provenance recording (the first DeleteFact pays one
		// rebuild) so the timed loop measures steady-state repairs.
		if err := ont.AddFact("undergraduateStudent(primer) ."); err != nil {
			b.Fatal(err)
		}
		if _, err := ont.DeleteFact("undergraduateStudent(primer) ."); err != nil {
			b.Fatal(err)
		}
		if _, err := ont.AnswerMode(q, ModeChase); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if n, err := ont.DeleteFact(fmt.Sprintf("undergraduateStudent(bench%d) .", i)); err != nil || n != 1 {
				b.Fatalf("delete: n=%d err=%v", n, err)
			}
			if _, err := ont.AnswerMode(q, ModeChase); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ont.MaterializationStats().LastSteps), "delta-steps")
	})
	b.Run("re-chase", func(b *testing.B) {
		data := datagen.UniversityData(16, 1)
		for i := 0; i < b.N; i++ {
			if err := data.InsertAtom(logic.NewAtom("undergraduateStudent", logic.NewConst(fmt.Sprintf("bench%d", i)))); err != nil {
				b.Fatal(err)
			}
		}
		pq := parser.MustParseQuery(q)
		u := query.MustNewUCQ(query.MustNew(pq.Head, pq.Body))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !data.Remove(logic.NewAtom("undergraduateStudent", logic.NewConst(fmt.Sprintf("bench%d", i)))) {
				b.Fatal("victim missing")
			}
			ans, res := chase.CertainAnswers(u, rules, data, chase.Options{})
			if !res.Terminated || ans.Len() == 0 {
				b.Fatal("chase failed")
			}
		}
	})
}

// --- R1: live ontology evolution ------------------------------------------

// BenchmarkAddRule compares extending a published materialization with a
// freshly added rule — AddRule resumes the chase with the whole instance as
// the delta against only the new rule — versus re-chasing the whole
// instance from scratch with the grown rule set. Each iteration adds one
// rule deriving a fresh predicate from the undergraduate population; the
// delta-steps metric shows the incremental arm's work is the new rule's
// firings alone.
func BenchmarkAddRule(b *testing.B) {
	rules := datagen.University()
	const q = `q(X) :- person(X) .`
	b.Run("incremental", func(b *testing.B) {
		ont := MustParse(rules.String() + "\n" + datagen.UniversityData(16, 1).String())
		if _, err := ont.AnswerMode(q, ModeChase); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ont.AddRule(fmt.Sprintf("undergraduateStudent(X) -> cohort%d(X) .", i)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ont.MaterializationStats().LastSteps), "delta-steps")
	})
	b.Run("re-chase", func(b *testing.B) {
		data := datagen.UniversityData(16, 1)
		set := rules
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rule, err := parser.ParseRule(fmt.Sprintf("undergraduateStudent(X) -> cohort%d(X) .", i))
			if err != nil {
				b.Fatal(err)
			}
			if set, err = set.WithRule(rule); err != nil {
				b.Fatal(err)
			}
			if res := chase.Run(set, data, chase.Options{}); !res.Terminated {
				b.Fatal("chase failed")
			}
		}
	})
}

// BenchmarkRemoveRule compares DRed-style rule removal — over-delete every
// fact whose provenance cites the rule, re-derive survivors — against
// re-chasing the shrunk rule set from scratch. Each iteration removes a rule
// added (untimed) just before it.
func BenchmarkRemoveRule(b *testing.B) {
	rules := datagen.University()
	const q = `q(X) :- person(X) .`
	b.Run("incremental", func(b *testing.B) {
		ont := MustParse(rules.String() + "\n" + datagen.UniversityData(16, 1).String())
		// Prime provenance recording so removals repair instead of rebuild.
		if err := ont.AddFact(`undergraduateStudent(primer) .`); err != nil {
			b.Fatal(err)
		}
		if _, err := ont.DeleteFact(`undergraduateStudent(primer) .`); err != nil {
			b.Fatal(err)
		}
		if _, err := ont.AnswerMode(q, ModeChase); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := ont.AddRule(fmt.Sprintf("undergraduateStudent(X) -> cohort%d(X) .", i)); err != nil {
				b.Fatal(err)
			}
			label := ont.Rules().Rules[ont.Rules().Len()-1].Label
			b.StartTimer()
			if err := ont.RemoveRule(label); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ont.MaterializationStats().LastSteps), "delta-steps")
	})
	b.Run("re-chase", func(b *testing.B) {
		data := datagen.UniversityData(16, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			rule, err := parser.ParseRule(fmt.Sprintf("undergraduateStudent(X) -> cohort%d(X) .", i))
			if err != nil {
				b.Fatal(err)
			}
			grown, err := datagen.University().WithRule(rule)
			if err != nil {
				b.Fatal(err)
			}
			shrunk, err := grown.WithoutRule(grown.Len() - 1)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if res := chase.Run(shrunk, data, chase.Options{}); !res.Terminated {
				b.Fatal("chase failed")
			}
		}
	})
}

// BenchmarkProvenanceMemory measures what the generational compaction sweep
// reclaims: each iteration is one AddFact/DeleteFact cycle with automatic
// compaction off, so dead derivations accumulate exactly as they would in a
// long-lived serving process; at the end one sweep runs and the metrics
// report the derivations dropped and the heap bytes freed.
func BenchmarkProvenanceMemory(b *testing.B) {
	ont := MustParse(datagen.University().String() + "\n" + datagen.UniversityData(8, 1).String())
	ont.SetCompactEvery(0) // accumulate; sweep manually below
	const q = `q(X) :- person(X) .`
	if err := ont.AddFact(`undergraduateStudent(primer) .`); err != nil {
		b.Fatal(err)
	}
	if _, err := ont.DeleteFact(`undergraduateStudent(primer) .`); err != nil {
		b.Fatal(err)
	}
	if _, err := ont.AnswerMode(q, ModeChase); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ont.AddFact(fmt.Sprintf("undergraduateStudent(churn%d) .", i)); err != nil {
			b.Fatal(err)
		}
		if n, err := ont.DeleteFact(fmt.Sprintf("undergraduateStudent(churn%d) .", i)); err != nil || n != 1 {
			b.Fatalf("delete churn%d: n=%d err=%v", i, n, err)
		}
	}
	b.StopTimer()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	dropped := ont.CompactProvenance()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	b.ReportMetric(float64(dropped), "derivs-dropped")
	if before.HeapAlloc > after.HeapAlloc {
		b.ReportMetric(float64(before.HeapAlloc-after.HeapAlloc), "bytes-freed")
	} else {
		b.ReportMetric(0, "bytes-freed")
	}
}

// BenchmarkSnapshotContention measures chase-mode answering under writer
// load: readers evaluate lock-free over published snapshots while a
// background writer streams AddFact deltas. The per-answer latency should
// match the uncontended case — readers never queue behind the writer.
func BenchmarkSnapshotContention(b *testing.B) {
	base := datagen.University().String() + "\n" + datagen.UniversityData(8, 1).String()
	const q = `q(X) :- person(X) .`
	for _, writers := range []bool{false, true} {
		name := "readers-only"
		if writers {
			name = "readers+writer"
		}
		b.Run(name, func(b *testing.B) {
			ont := MustParse(base)
			if _, err := ont.AnswerMode(q, ModeChase); err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			if writers {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if err := ont.AddFact(fmt.Sprintf("undergraduateStudent(w%d) .", i)); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := ont.AnswerMode(q, ModeChase); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkInstanceClone measures snapshotting a chased instance — the cost
// Clone pays when (re)building the cached materialization. Wholesale
// tuple/key/index copies, no re-hashing.
func BenchmarkInstanceClone(b *testing.B) {
	rules := datagen.University()
	res := chase.Run(rules, datagen.UniversityData(16, 1), chase.Options{})
	if !res.Terminated {
		b.Fatal("chase must terminate")
	}
	res.Instance.EnsureIndexes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Instance.Clone()
	}
}

// --- Ablations: design choices called out in DESIGN.md -------------------

// BenchmarkAblationMinimize compares the rewriting engine with and without
// per-CQ core minimization on the university workload: minimization costs
// homomorphism checks per generated CQ but shrinks the pool and the final
// UCQ.
func BenchmarkAblationMinimize(b *testing.B) {
	rules := datagen.University()
	pq := parser.MustParseQuery(`q(X) :- person(X) .`)
	q := query.MustNew(pq.Head, pq.Body)
	for _, min := range []bool{true, false} {
		b.Run(fmt.Sprintf("minimize=%v", min), func(b *testing.B) {
			b.ReportAllocs()
			kept := 0
			for i := 0; i < b.N; i++ {
				res := rewrite.Rewrite(q, rules, rewrite.Options{Minimize: min})
				if !res.Complete {
					b.Fatal("must complete")
				}
				kept = res.Kept
			}
			b.ReportMetric(float64(kept), "disjuncts")
		})
	}
}

// BenchmarkAblationPieceSize compares piece-unification caps: size 1 is the
// classical atom-at-a-time rewriting plus no factorization; larger pieces
// admit multi-atom steps (needed for multi-head rules and factorization) at
// the price of subset enumeration.
func BenchmarkAblationPieceSize(b *testing.B) {
	rules := datagen.University()
	pq := parser.MustParseQuery(`q(X) :- advisor(X, P), professor(P) .`)
	q := query.MustNew(pq.Head, pq.Body)
	for _, size := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("maxpiece=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := rewrite.Rewrite(q, rules, rewrite.Options{MaxPieceSize: size, Minimize: true})
				if !res.Complete {
					b.Fatal("must complete")
				}
			}
		})
	}
}

// BenchmarkAblationChaseVariant compares the restricted chase (checks head
// satisfaction before firing) against the semi-oblivious chase (fires once
// per frontier binding) on the university workload.
func BenchmarkAblationChaseVariant(b *testing.B) {
	rules := datagen.University()
	data := datagen.UniversityData(4, 1)
	for _, variant := range []chase.Variant{chase.Restricted, chase.Oblivious} {
		b.Run(variant.String(), func(b *testing.B) {
			b.ReportAllocs()
			nulls := 0
			for i := 0; i < b.N; i++ {
				res := chase.Run(rules, data, chase.Options{Variant: variant})
				if !res.Terminated {
					b.Fatal("chase must terminate")
				}
				nulls = res.NullsCreated
			}
			b.ReportMetric(float64(nulls), "nulls")
		})
	}
}

// BenchmarkGraphConstructionOnly separates the two graph constructions from
// their cycle checks on a mid-sized generated set.
func BenchmarkGraphConstructionOnly(b *testing.B) {
	set := datagen.Rules(datagen.Config{Family: datagen.FamilyMultilinear, Rules: 12, Seed: 5})
	b.Run("position-graph", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			posgraph.Build(set)
		}
	})
	b.Run("pnode-graph", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pnode.Build(set, pnode.Options{})
		}
	})
}

// --- S1: streaming answers — time-to-first-tuple and LIMIT push-down ------

// denseGraphSrc generates a facts-only program whose 2-hop self-join has a
// large answer set (100 nodes x 30 out-edges = 3000 edge facts, ~90k join
// candidates): the fixture where full materialization is expensive but the
// first tuple falls out of the very first index probe.
func denseGraphSrc() string {
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		for j := 0; j < 30; j++ {
			fmt.Fprintf(&sb, "edge(n%d, n%d) .\n", i, (i*7+j*13+1)%100)
		}
	}
	return sb.String()
}

// BenchmarkFirstAnswer measures time-to-first-tuple of the streaming
// executor against materializing the full answer set of the same query —
// the ISSUE acceptance criterion is a >=10x gap. The streamed arm stops the
// iterator tree after one answer; the materialized arm pays the whole join.
func BenchmarkFirstAnswer(b *testing.B) {
	const q = `q(X, Z) :- edge(X, Y), edge(Y, Z) .`
	ont := MustParse(denseGraphSrc())
	// Warm the snapshot and plan cache so both arms measure steady state.
	if _, err := ont.Answer(q); err != nil {
		b.Fatal(err)
	}
	b.Run("streamed-first", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got := 0
			err := ont.AnswerEach(context.Background(), q, Options{}, func(Answer) bool {
				got++
				return false
			})
			if err != nil || got != 1 {
				b.Fatalf("first answer: got %d, err %v", got, err)
			}
		}
	})
	b.Run("materialized-full", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			ans, err := ont.Answer(q)
			if err != nil {
				b.Fatal(err)
			}
			n = ans.Len()
		}
		b.ReportMetric(float64(n), "answers")
	})
}

// BenchmarkAnswerLimited measures LIMIT push-down at k << n: the executor
// stops as soon as k distinct answers exist, so cost grows with k, not with
// the full result (the limit=0 arm is the full-result baseline).
func BenchmarkAnswerLimited(b *testing.B) {
	const q = `q(X, Z) :- edge(X, Y), edge(Y, Z) .`
	ont := MustParse(denseGraphSrc())
	full, err := ont.Answer(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 10, 100, 0} {
		name := fmt.Sprintf("limit=%d", k)
		if k == 0 {
			name = "limit=all"
		}
		b.Run(name, func(b *testing.B) {
			want := k
			if k == 0 || full.Len() < k {
				want = full.Len()
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ans, err := ont.AnswerOptions(q, Options{Limit: k})
				if err != nil {
					b.Fatal(err)
				}
				if ans.Len() != want {
					b.Fatalf("limit %d returned %d answers, want %d", k, ans.Len(), want)
				}
			}
		})
	}
}

// --- PR 9: shared answer cache -------------------------------------------

// BenchmarkPartitionPruning measures partition-pruned evaluation — not
// parallelism: Parallelism stays 1 in every arm. The query's hash-join plan
// binds the partitioning column of edge/3 through the single anchor tuple,
// so over a partitioned materialization the composite-key table is built
// over one sub-instance (~N/P tuples) instead of the whole relation; parts=1
// is the classic single-instance baseline paying the full build per call.
func BenchmarkPartitionPruning(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("edge(K, A, V) -> reach(K, V) .\n")
	const keys, per = 200, 200
	for k := 0; k < keys; k++ {
		for i := 0; i < per; i++ {
			fmt.Fprintf(&sb, "edge(k%d, a%d, v%d_%d) .\n", k, i%7, k, i)
		}
	}
	sb.WriteString("anchor(k7, a3) .\n")
	const q = `q(V) :- anchor(K, A), edge(K, A, V) .`
	for _, parts := range []int{1, 4} {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			ont := MustParse(sb.String())
			opts := Options{Mode: ModeChase, Join: JoinHash, NoCache: true, Partitions: parts}
			want, err := ont.AnswerOptions(q, opts) // warm materialization + plans
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				ans, err := ont.AnswerOptions(q, opts)
				if err != nil {
					b.Fatal(err)
				}
				n = ans.Len()
			}
			b.StopTimer()
			if n != want.Len() || n == 0 {
				b.Fatalf("answers drifted: got %d, want %d (non-zero)", n, want.Len())
			}
			if parts > 1 {
				if st := ont.MaterializationStats(); st.Partition.PrunedProbes == 0 {
					b.Fatalf("stats=%+v: partitioned arm never pruned a probe", st.Partition)
				}
			}
			b.ReportMetric(float64(n), "answers")
		})
	}
}

// BenchmarkCachedAnswer measures the answer-view cache against full
// evaluation on a repeated query. uncached re-evaluates every call; warm
// answers from the cached view (a lock-free generation check plus a map
// lookup — the issue's bar is ≥10× under uncached); delta inserts one fact
// per iteration and answers again, so each hit is a view the maintenance
// pipeline carried across the insert, against delta-uncached re-evaluating
// after the same insert.
func BenchmarkCachedAnswer(b *testing.B) {
	src := datagen.University().String() + "\n" + datagen.UniversityData(16, 1).String()
	const q = `q(X) :- person(X) .`
	chase := Options{Mode: ModeChase}

	b.Run("uncached", func(b *testing.B) {
		ont := MustParse(src)
		bypass := chase
		bypass.NoCache = true
		if _, err := ont.AnswerOptions(q, bypass); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ont.AnswerOptions(q, bypass); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		ont := MustParse(src)
		ont.SetAnswerCacheBudget(DefaultAnswerCacheBytes)
		for i := 0; i < 2; i++ { // build, then fill the view
			if _, err := ont.AnswerOptions(q, chase); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ont.AnswerOptions(q, chase); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := ont.AnswerCacheStats(); st.Hits < uint64(b.N) {
			b.Fatalf("stats=%+v: the warm arm was not served from the cache", st)
		}
	})
	for _, arm := range []struct {
		name   string
		budget int64
	}{{"delta", DefaultAnswerCacheBytes}, {"delta-uncached", 0}} {
		b.Run(arm.name, func(b *testing.B) {
			ont := MustParse(src)
			ont.SetAnswerCacheBudget(arm.budget)
			for i := 0; i < 2; i++ {
				if _, err := ont.AnswerOptions(q, chase); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ont.AddFact(fmt.Sprintf("graduateStudent(cachebench%d) .", i)); err != nil {
					b.Fatal(err)
				}
				if _, err := ont.AnswerOptions(q, chase); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if arm.budget > 0 {
				if st := ont.AnswerCacheStats(); st.DeltaMaintained == 0 || st.Hits == 0 {
					b.Fatalf("stats=%+v: the delta arm never hit a maintained view", st)
				}
			}
		})
	}
}
