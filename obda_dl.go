package repro

import (
	"fmt"

	"repro/internal/dlite"
	"repro/internal/fol"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/parser"
	"repro/internal/storage"
)

// FromDLLite builds an ontology from a DL-Lite_R TBox (one axiom per line,
// e.g. "Student <= Person", "Professor <= exists teaches") and an optional
// fact program. The TBox is translated into linear TGDs, so the resulting
// ontology is always FO-rewritable.
func FromDLLite(tboxSrc, factsSrc string) (*Ontology, error) {
	tbox, err := dlite.ParseTBox(tboxSrc)
	if err != nil {
		return nil, err
	}
	rules, err := tbox.Translate()
	if err != nil {
		return nil, err
	}
	data := storage.NewInstance()
	if factsSrc != "" {
		facts, err := parser.ParseFacts(factsSrc)
		if err != nil {
			return nil, err
		}
		for _, f := range facts {
			if err := data.InsertAtom(f); err != nil {
				return nil, err
			}
		}
	}
	return newOntology(rules, data), nil
}

// FromMappings builds an ontology whose data is the virtual ABox obtained
// by applying GAV mapping assertions (query-shaped clauses targeting
// ontology predicates) to a source database — the full three-layer OBDA
// architecture of the paper's §1.
func FromMappings(rulesSrc, mappingSrc string, source *storage.Instance) (*Ontology, error) {
	rules, err := parser.ParseRules(rulesSrc)
	if err != nil {
		return nil, err
	}
	maps, err := mapping.Parse(mappingSrc)
	if err != nil {
		return nil, err
	}
	abox, err := maps.Apply(source)
	if err != nil {
		return nil, err
	}
	return newOntology(rules, abox), nil
}

// FO returns the rewriting as a first-order formula with its answer-variable
// tuple — the q′ of the paper's Definition 1 — whose direct model checking
// over any database D computes ans(q′, D) = cert(q, P, D).
func (r *Rewriting) FO() (fol.Formula, []logic.Term, error) {
	if !r.Complete {
		return nil, nil, fmt.Errorf("repro: rewriting incomplete; its FO reading would under-approximate")
	}
	return fol.FromUCQ(r.UCQ)
}
