package repro

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dependency"
	"repro/internal/eval"
	"repro/internal/logic"
)

// TestPropertyPartitionedEqualsUnpartitioned is the distribution-correctness
// property at the public API: over seeded random ontologies, a chase-mode
// ontology hash-partitioned P ways must produce exactly the certain answers
// of the classic single-instance layout — and, because the partitioned
// driver replays the very same semi-naive rounds, exactly its cumulative
// Steps/Rounds/NullsCreated counters too. Sequential and parallel,
// race-clean under -race.
func TestPropertyPartitionedEqualsUnpartitioned(t *testing.T) {
	families := []datagen.Family{datagen.FamilyLinear, datagen.FamilyChain, datagen.FamilySticky}
	for _, fam := range families {
		for seed := int64(1); seed <= 3; seed++ {
			for _, par := range []int{1, 4} {
				t.Run(fmt.Sprintf("%v/seed=%d/par=%d", fam, seed, par), func(t *testing.T) {
					ontBase := ontologyFromDatagen(t, fam, 5, seed)
					queries := atomicQueriesOf(t, ontBase.Rules())
					baseOpts := Options{Mode: ModeChase, Parallelism: par}
					if _, err := ontBase.AnswerOptions(queries[0], baseOpts); err != nil {
						t.Skipf("baseline chase over budget: %v", err)
					}
					baseStats := ontBase.MaterializationStats()
					if got := baseStats.Partitions; got != 1 {
						t.Fatalf("unpartitioned build reports Partitions=%d, want 1", got)
					}

					for _, parts := range []int{2, 4} {
						ontP := ontologyFromDatagen(t, fam, 5, seed)
						opts := Options{Mode: ModeChase, Parallelism: par, Partitions: parts}
						for _, q := range queries {
							base, errBase := ontBase.AnswerOptions(q, baseOpts)
							part, errPart := ontP.AnswerOptions(q, opts)
							if (errBase == nil) != (errPart == nil) {
								t.Fatalf("P=%d %s: error divergence: base=%v part=%v", parts, q, errBase, errPart)
							}
							if errBase != nil {
								continue
							}
							if !base.Equal(part) {
								t.Errorf("P=%d %s: answers differ:\nunpartitioned:\n%s\npartitioned:\n%s", parts, q, base, part)
							}
						}

						st := ontP.MaterializationStats()
						if st.Partitions != parts {
							t.Errorf("P=%d: stats report Partitions=%d", parts, st.Partitions)
						}
						if !st.Terminated || !baseStats.Terminated {
							continue // counters are only exact at a fixpoint
						}
						if st.Steps != baseStats.Steps || st.Rounds != baseStats.Rounds ||
							st.NullsCreated != baseStats.NullsCreated {
							t.Errorf("P=%d: counters diverge: steps %d/%d rounds %d/%d nulls %d/%d",
								parts, st.Steps, baseStats.Steps, st.Rounds, baseStats.Rounds,
								st.NullsCreated, baseStats.NullsCreated)
						}
						if st.Partition.LocalFirings == 0 && st.Partition.ShippedTriggers == 0 && st.Steps > 0 {
							t.Errorf("P=%d: %d steps fired but no locality counters moved: %+v",
								parts, st.Steps, st.Partition)
						}
					}
				})
			}
		}
	}
}

// TestPartitionedEvolutionEqualsScratch runs the live-mutation pipeline over
// a hash-partitioned materialization: a seeded interleaving of AddRule,
// RemoveRule, AddFact and DeleteFact — with chase-mode answers in between,
// so the partitioned build is repeatedly extended and DRed-repaired in
// place — must end with exactly the answers of an unpartitioned ontology
// parsed from scratch on the final rule set and surviving facts.
func TestPartitionedEvolutionEqualsScratch(t *testing.T) {
	families := []datagen.Family{datagen.FamilyLinear, datagen.FamilyChain, datagen.FamilySticky}
	for _, fam := range families {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%v/seed=%d", fam, seed), func(t *testing.T) {
				full := datagen.Rules(datagen.Config{Family: fam, Rules: 8, Seed: seed})
				data := datagen.Instance(full, 20, 8, seed)
				atoms := data.Atoms()

				rng := rand.New(rand.NewSource(seed * 97073159))
				rng.Shuffle(len(atoms), func(i, j int) { atoms[i], atoms[j] = atoms[j], atoms[i] })

				initRules := dependency.MustNewSet(full.Rules[:5]...)
				ruleReserve := full.Rules[5:]
				cut := 2 * len(atoms) / 3
				live := make(map[string]logic.Atom)
				for _, a := range atoms[:cut] {
					live[a.Key()] = a
				}
				factReserve := atoms[cut:]

				ont, err := Parse(initRules.String() + "\n" + factSrc(atoms[:cut]))
				if err != nil {
					t.Fatal(err)
				}
				opts := Options{Mode: ModeChase, Parallelism: 2, Partitions: 3}
				queries := atomicQueriesOf(t, full)
				if _, err := ont.AnswerOptions(queries[0], opts); err != nil {
					t.Skipf("initial chase over budget: %v", err)
				}

				for step := 0; step < 20; step++ {
					switch op := rng.Intn(6); {
					case op == 0 && len(ruleReserve) > 0:
						if err := ont.AddRule(ruleSrc(ruleReserve[0])); err != nil {
							t.Fatal(err)
						}
						ruleReserve = ruleReserve[1:]
					case op == 1 && ont.Rules().Len() > 1:
						rules := ont.Rules()
						label := rules.Rules[rng.Intn(rules.Len())].Label
						if err := ont.RemoveRule(label); err != nil {
							t.Fatal(err)
						}
					case op <= 3 && len(factReserve) > 0:
						n := 1 + rng.Intn(3)
						if n > len(factReserve) {
							n = len(factReserve)
						}
						if err := ont.AddFact(factSrc(factReserve[:n])); err != nil {
							t.Fatal(err)
						}
						for _, a := range factReserve[:n] {
							live[a.Key()] = a
						}
						factReserve = factReserve[n:]
					case len(live) > 0:
						var victims []logic.Atom
						want := 1 + rng.Intn(3)
						for _, a := range live {
							victims = append(victims, a)
							if len(victims) == want {
								break
							}
						}
						if n, err := ont.DeleteFact(factSrc(victims)); err != nil || n != len(victims) {
							t.Fatalf("DeleteFact removed %d of %d live facts, err=%v", n, len(victims), err)
						}
						for _, a := range victims {
							delete(live, a.Key())
						}
					}
					if rng.Intn(2) == 0 {
						if _, err := ont.AnswerOptions(queries[rng.Intn(len(queries))], opts); err != nil {
							t.Skipf("evolved chase over budget: %v", err)
						}
					}
				}

				if st := ont.MaterializationStats(); st.Cached && st.Partitions != 3 {
					t.Fatalf("mutated build lost its layout: Partitions=%d, want 3", st.Partitions)
				}

				var final []logic.Atom
				for _, a := range live {
					final = append(final, a)
				}
				ontScratch, err := Parse(ont.Rules().String() + "\n" + factSrc(final))
				if err != nil {
					t.Fatal(err)
				}
				scratchOpts := Options{Mode: ModeChase, Parallelism: 2}
				for _, q := range queries {
					inc, errInc := ont.AnswerOptions(q, opts)
					scr, errScr := ontScratch.AnswerOptions(q, scratchOpts)
					if (errInc == nil) != (errScr == nil) {
						t.Fatalf("%s: error divergence: partitioned=%v scratch=%v", q, errInc, errScr)
					}
					if errInc != nil {
						continue
					}
					if !inc.Equal(scr) {
						t.Errorf("%s: answers differ:\npartitioned incremental:\n%s\nunpartitioned scratch:\n%s", q, inc, scr)
					}
				}
			})
		}
	}
}

// TestPartitionedAnswerSurfacesAgree drives every partitioned answering
// surface — AnswerOptions, the push iterator AnswerEach and the pull
// iterator AnswerStream — over the same ontology and requires identical
// answer sets, plus a live pruned-probe counter once a query binds the
// partitioning column.
func TestPartitionedAnswerSurfacesAgree(t *testing.T) {
	ont := MustParse(datagen.University().String() + "\n" + datagen.UniversityData(6, 2).String())
	opts := Options{Mode: ModeChase, Parallelism: 2, Partitions: 4}
	for _, q := range []string{
		`q(X) :- person(X) .`,
		`q(X,Y) :- advisor(X,Y) .`,
		`q(X) :- professor(X) .`,
	} {
		want, err := ont.AnswerOptions(q, opts)
		if err != nil {
			t.Fatal(err)
		}

		each := eval.NewAnswers(want.Arity())
		if err := ont.AnswerEach(context.Background(), q, opts, func(a Answer) bool {
			each.Add(a)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !each.Equal(want) {
			t.Errorf("%s: AnswerEach diverges:\n%s\nvs\n%s", q, each, want)
		}

		s, err := ont.AnswerStream(context.Background(), q, opts)
		if err != nil {
			t.Fatal(err)
		}
		streamed := eval.NewAnswers(want.Arity())
		for {
			a, ok, err := s.Next(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			streamed.Add(a)
		}
		if !streamed.Equal(want) {
			t.Errorf("%s: AnswerStream diverges:\n%s\nvs\n%s", q, streamed, want)
		}
	}

	// A constant in the partitioning column routes the probe to exactly one
	// sub-instance; the pruned counter must say so through the stats surface.
	if _, err := ont.AnswerOptions(`q(X) :- advisor(student0_0, X) .`, opts); err != nil {
		t.Fatal(err)
	}
	if st := ont.MaterializationStats(); st.Partition.PrunedProbes == 0 {
		t.Errorf("constant-bound probe recorded no pruning: %+v", st.Partition)
	}
}
