# Mirrors .github/workflows/ci.yml exactly: CI runs `make lint build test
# bench` step by step; keep the two in sync.

GO ?= go
# bench-json pipes `go test` into benchjson; pipefail makes a benchmark
# failure fail the target (and CI), not vanish behind benchjson's exit 0.
SHELL := /bin/bash -o pipefail

.PHONY: all build test bench lint bench-json

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Benchmark smoke pass: compile and run every benchmark once.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

# Machine-readable benchmark baseline: one timed pass per benchmark,
# rendered to JSON for the perf trajectory. The default output is
# untracked; the committed baselines (BENCH_1.json, BENCH_2.json) are
# recorded deliberately with `make bench-json BENCH_OUT=BENCH_N.json`.
BENCH_OUT ?= bench.out.json

bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... | $(GO) run ./cmd/benchjson > $(BENCH_OUT)
