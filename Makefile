# Mirrors .github/workflows/ci.yml exactly: CI runs `make lint build test
# bench` step by step; keep the two in sync.

GO ?= go
# bench-json pipes `go test` into benchjson; pipefail makes a benchmark
# failure fail the target (and CI), not vanish behind benchjson's exit 0.
SHELL := /bin/bash -o pipefail

.PHONY: all build test bench lint bench-json bench-compare pprof serve-smoke

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Benchmark smoke pass: compile and run every benchmark once.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# lint is three-legged: gofmt, stock vet, and reprovet — the repo's own
# invariant checkers (internal/analysis) run over every package (test
# variants included) through the `go vet -vettool` unitchecker protocol.
# Failures print as "file:line:col: [analyzer] message".
REPROVET := bin/reprovet

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) build -o $(REPROVET) ./cmd/reprovet
	$(GO) vet -vettool=$(abspath $(REPROVET)) ./...

# End-to-end smoke of the HTTP serving layer: boot cmd/serve on an
# ephemeral port, run a read, a write and a deadline-cancelled request
# against it, and require a clean SIGTERM drain.
serve-smoke:
	bash scripts/serve_smoke.sh

# Machine-readable benchmark baseline: one timed pass per benchmark,
# rendered to JSON for the perf trajectory. The default output is
# untracked; the committed baselines (BENCH_1.json, BENCH_2.json) are
# recorded deliberately with `make bench-json BENCH_OUT=BENCH_N.json`.
BENCH_OUT ?= bench.out.json

bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... | $(GO) run ./cmd/benchjson > $(BENCH_OUT)

# Strategy ablations: run the strategy-sensitive benchmarks once per
# join-order strategy (PLANNER env, read by TestMain) and once per join
# execution strategy (JOIN env, same mechanism), the repeated-query
# benchmarks once per answer-cache setting (CACHE env, same mechanism), and
# the chase-mode benchmarks once per partition layout (PART env, same
# mechanism), comparing each axis through benchstat when it is installed,
# falling back to the raw outputs. BenchmarkAnswer* compare the planners
# within a single run and are deliberately excluded from the strategy axes.
BENCH_COMPARE_PATTERN ?= BenchmarkCQEvaluation|BenchmarkEvaluationOnly|BenchmarkChaseScaling|BenchmarkParallelUCQEvaluation|BenchmarkIncrementalAddFact
BENCH_CACHE_PATTERN ?= BenchmarkAnswerChase|BenchmarkAnswerRewrite|BenchmarkIncrementalAddFact
BENCH_PART_PATTERN ?= BenchmarkAnswerChase|BenchmarkPartitionPruning|BenchmarkIncrementalAddFact
BENCH_PARTS ?= 4
BENCH_COMPARE_COUNT ?= 5
BENCH_COMPARE_TIME ?= 0.2s

bench-compare:
	PLANNER=greedy $(GO) test -run '^$$' -bench '$(BENCH_COMPARE_PATTERN)' \
		-count $(BENCH_COMPARE_COUNT) -benchtime $(BENCH_COMPARE_TIME) . > bench.greedy.txt
	PLANNER=cost $(GO) test -run '^$$' -bench '$(BENCH_COMPARE_PATTERN)' \
		-count $(BENCH_COMPARE_COUNT) -benchtime $(BENCH_COMPARE_TIME) . > bench.cost.txt
	JOIN=nested $(GO) test -run '^$$' -bench '$(BENCH_COMPARE_PATTERN)' \
		-count $(BENCH_COMPARE_COUNT) -benchtime $(BENCH_COMPARE_TIME) . > bench.join-nested.txt
	JOIN=hash $(GO) test -run '^$$' -bench '$(BENCH_COMPARE_PATTERN)' \
		-count $(BENCH_COMPARE_COUNT) -benchtime $(BENCH_COMPARE_TIME) . > bench.join-hash.txt
	CACHE=off $(GO) test -run '^$$' -bench '$(BENCH_CACHE_PATTERN)' \
		-count $(BENCH_COMPARE_COUNT) -benchtime $(BENCH_COMPARE_TIME) . > bench.cache-off.txt
	CACHE=on $(GO) test -run '^$$' -bench '$(BENCH_CACHE_PATTERN)' \
		-count $(BENCH_COMPARE_COUNT) -benchtime $(BENCH_COMPARE_TIME) . > bench.cache-on.txt
	PART=1 $(GO) test -run '^$$' -bench '$(BENCH_PART_PATTERN)' \
		-count $(BENCH_COMPARE_COUNT) -benchtime $(BENCH_COMPARE_TIME) . > bench.part-1.txt
	PART=$(BENCH_PARTS) $(GO) test -run '^$$' -bench '$(BENCH_PART_PATTERN)' \
		-count $(BENCH_COMPARE_COUNT) -benchtime $(BENCH_COMPARE_TIME) . > bench.part-n.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		echo "== planner: greedy vs cost =="; \
		benchstat bench.greedy.txt bench.cost.txt; \
		echo "== join: nested vs hash =="; \
		benchstat bench.join-nested.txt bench.join-hash.txt; \
		echo "== answer cache: off vs on =="; \
		benchstat bench.cache-off.txt bench.cache-on.txt; \
		echo "== partitions: 1 vs $(BENCH_PARTS) =="; \
		benchstat bench.part-1.txt bench.part-n.txt; \
	else \
		echo "benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest);"; \
		echo "raw outputs in bench.{greedy,cost,join-nested,join-hash,cache-off,cache-on,part-1,part-n}.txt"; \
	fi

# CPU + heap profile of the steady-state answering path (warm snapshot and
# plan cache). Inspect with `go tool pprof -top cpu.prof`.
pprof:
	$(GO) test -run '^$$' -bench 'BenchmarkAnswer' -benchtime 200x \
		-cpuprofile cpu.prof -memprofile mem.prof .
	@echo "inspect with: $(GO) tool pprof -top cpu.prof"
