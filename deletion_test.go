package repro

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/logic"
)

// TestPropertyAddDeleteFactIncrementalEqualsScratch is the bidirectional
// maintenance-correctness property at the public API: over seeded random
// ontologies, a random interleaving of AddFact batches, DeleteFact batches
// and chase-mode Answer calls — so the published materialization is
// repeatedly extended and DRed-repaired rather than rebuilt — must end with
// exactly the answers of an ontology chased from scratch on the surviving
// facts. Sequential and parallel, race-clean under -race.
func TestPropertyAddDeleteFactIncrementalEqualsScratch(t *testing.T) {
	families := []datagen.Family{datagen.FamilyLinear, datagen.FamilyChain, datagen.FamilySticky}
	for _, fam := range families {
		for seed := int64(1); seed <= 5; seed++ {
			for _, par := range []int{1, 4} {
				t.Run(fmt.Sprintf("%v/seed=%d/par=%d", fam, seed, par), func(t *testing.T) {
					set := datagen.Rules(datagen.Config{Family: fam, Rules: 5, Seed: seed})
					data := datagen.Instance(set, 20, 8, seed)
					atoms := data.Atoms()

					rng := rand.New(rand.NewSource(seed * 15485863))
					rng.Shuffle(len(atoms), func(i, j int) { atoms[i], atoms[j] = atoms[j], atoms[i] })

					// Start with two thirds of the data; the rest is the
					// insertion reserve. Track the live base in a mirror.
					cut := 2 * len(atoms) / 3
					live := make(map[string]logic.Atom)
					for _, a := range atoms[:cut] {
						live[a.Key()] = a
					}
					reserve := atoms[cut:]

					ont, err := Parse(set.String() + "\n" + factSrc(atoms[:cut]))
					if err != nil {
						t.Fatal(err)
					}
					opts := Options{Mode: ModeChase, Parallelism: par}
					queries := atomicQueries(t, ont)
					if _, err := ont.AnswerOptions(queries[0], opts); err != nil {
						t.Skipf("initial chase over budget: %v", err)
					}

					for step := 0; step < 30; step++ {
						switch {
						case rng.Intn(2) == 0 && len(reserve) > 0: // insert
							n := 1 + rng.Intn(3)
							if n > len(reserve) {
								n = len(reserve)
							}
							if err := ont.AddFact(factSrc(reserve[:n])); err != nil {
								t.Fatal(err)
							}
							for _, a := range reserve[:n] {
								live[a.Key()] = a
							}
							reserve = reserve[n:]
						case len(live) > 0: // delete
							var victims []logic.Atom
							want := 1 + rng.Intn(3)
							for _, a := range live {
								victims = append(victims, a)
								if len(victims) == want {
									break
								}
							}
							n, err := ont.DeleteFact(factSrc(victims))
							if err != nil {
								t.Fatal(err)
							}
							if n != len(victims) {
								t.Fatalf("DeleteFact removed %d of %d live facts", n, len(victims))
							}
							for _, a := range victims {
								delete(live, a.Key())
							}
						}
						if rng.Intn(2) == 0 {
							if _, err := ont.AnswerOptions(queries[rng.Intn(len(queries))], opts); err != nil {
								t.Fatal(err)
							}
						}
					}

					var final []logic.Atom
					for _, a := range live {
						final = append(final, a)
					}
					ontScratch, err := Parse(set.String() + "\n" + factSrc(final))
					if err != nil {
						t.Fatal(err)
					}
					for _, q := range queries {
						inc, errInc := ont.AnswerOptions(q, opts)
						scr, errScr := ontScratch.AnswerOptions(q, opts)
						if (errInc == nil) != (errScr == nil) {
							t.Fatalf("%s: error divergence: inc=%v scratch=%v", q, errInc, errScr)
						}
						if errInc != nil {
							continue
						}
						if !inc.Equal(scr) {
							t.Errorf("%s: answers differ:\nincremental:\n%s\nscratch:\n%s", q, inc, scr)
						}
					}
				})
			}
		}
	}
}

// TestDeleteFactWorkProportionalToClosure asserts, through the public
// counters, that DeleteFact repairs the materialization with work
// proportional to the deleted closure: the repair's steps are a handful
// while the initial build's were hundreds, and the answers lose exactly the
// deleted student.
func TestDeleteFactWorkProportionalToClosure(t *testing.T) {
	ont := MustParse(datagen.University().String() + "\n" + datagen.UniversityData(16, 1).String())
	const q = `q(X) :- person(X) .`
	if err := ont.AddFact(`undergraduateStudent(doomed) . undergraduateStudent(primer) .`); err != nil {
		t.Fatal(err)
	}
	// Provenance recording is lazy: the first DeleteFact drops the cache and
	// flips it on, so prime with a throwaway deletion before measuring.
	if _, err := ont.AnswerMode(q, ModeChase); err != nil {
		t.Fatal(err)
	}
	if n, err := ont.DeleteFact(`undergraduateStudent(primer) .`); err != nil || n != 1 {
		t.Fatalf("priming delete: n=%d err=%v", n, err)
	}
	if st := ont.MaterializationStats(); st.Cached {
		t.Fatalf("first delete must drop the provenance-less cache: %+v", st)
	}
	before, err := ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	s0 := ont.MaterializationStats()
	if s0.LastSteps < 100 {
		t.Fatalf("initial build fired %d steps; workload too small for the proportionality claim", s0.LastSteps)
	}

	n, err := ont.DeleteFact(`undergraduateStudent(doomed) .`)
	if err != nil || n != 1 {
		t.Fatalf("DeleteFact: n=%d err=%v", n, err)
	}
	after, err := ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	s1 := ont.MaterializationStats()
	if !s1.Cached || s1.Epoch != s0.Epoch+1 {
		t.Errorf("stats after delete = %+v, want epoch bump on the repaired cache", s1)
	}
	if s1.LastSteps > 10 {
		t.Errorf("repair LastSteps = %d, want a handful (initial build: %d)", s1.LastSteps, s0.LastSteps)
	}
	if after.Len() != before.Len()-1 {
		t.Errorf("answers: %d -> %d, want exactly one person fewer", before.Len(), after.Len())
	}
	if after.Contains([]logic.Term{logic.NewConst("doomed")}) {
		t.Error("person(doomed) must be gone after DeleteFact")
	}

	// Deleting an absent fact is a free no-op: no epoch bump, same answers.
	if n, err := ont.DeleteFact(`undergraduateStudent(ghost) .`); err != nil || n != 0 {
		t.Fatalf("absent delete: n=%d err=%v", n, err)
	}
	if s2 := ont.MaterializationStats(); s2.Epoch != s1.Epoch {
		t.Errorf("absent delete bumped the epoch: %+v", s2)
	}
}

// TestDeleteFactKeepsDerivableFacts: deleting a base fact that is also
// derivable from the surviving base must remove the base copy but keep the
// fact in the certain answers — the DRed base-guard plus re-derivation.
func TestDeleteFactKeepsDerivableFacts(t *testing.T) {
	ont := MustParse(`
student(X) -> person(X) .
student(alice) .
person(alice) .
person(bob) .
student(primer) .
`)
	const q = `q(X) :- person(X) .`
	if _, err := ont.AnswerMode(q, ModeChase); err != nil {
		t.Fatal(err)
	}
	// Prime the lazy provenance recording so the assertions below exercise
	// the DRed repair path, not the drop-and-rebuild of a first deletion.
	if n, err := ont.DeleteFact(`student(primer) .`); err != nil || n != 1 {
		t.Fatalf("priming delete: n=%d err=%v", n, err)
	}
	if _, err := ont.AnswerMode(q, ModeChase); err != nil {
		t.Fatal(err)
	}
	// person(alice) is base AND derivable from student(alice): deleting the
	// base copy must not remove it from the expansion.
	if n, err := ont.DeleteFact(`person(alice) .`); err != nil || n != 1 {
		t.Fatalf("delete person(alice): n=%d err=%v", n, err)
	}
	ans, err := ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Contains([]logic.Term{logic.NewConst("alice")}) {
		t.Errorf("person(alice) must survive via student(alice):\n%s", ans)
	}
	// Deleting the supporting student fact now removes it for good.
	if n, err := ont.DeleteFact(`student(alice) .`); err != nil || n != 1 {
		t.Fatalf("delete student(alice): n=%d err=%v", n, err)
	}
	ans, err = ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Contains([]logic.Term{logic.NewConst("alice")}) || ans.Len() != 1 {
		t.Errorf("want only person(bob) left:\n%s", ans)
	}
}

// TestEqualSizeOutOfBandMutationDetected is the staleness-mask regression:
// an out-of-band insert+delete pair of equal counts keeps Data().Size()
// constant, which fooled the old size-based staleness check into serving
// stale answers. The mutation counter must catch it.
func TestEqualSizeOutOfBandMutationDetected(t *testing.T) {
	ont := MustParse(`
student(X) -> person(X) .
student(alice) .
student(bob) .
`)
	const q = `q(X) :- person(X) .`
	if _, err := ont.AnswerMode(q, ModeChase); err != nil {
		t.Fatal(err)
	}
	size := ont.Data().Size()
	// Balanced out-of-band mutation: size unchanged, contents changed.
	if !ont.Data().Remove(logic.NewAtom("student", logic.NewConst("bob"))) {
		t.Fatal("out-of-band remove failed")
	}
	if err := ont.Data().InsertAtom(logic.NewAtom("student", logic.NewConst("carol"))); err != nil {
		t.Fatal(err)
	}
	if ont.Data().Size() != size {
		t.Fatal("mutation was supposed to be size-neutral")
	}
	ans, err := ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Contains([]logic.Term{logic.NewConst("bob")}) || !ans.Contains([]logic.Term{logic.NewConst("carol")}) {
		t.Errorf("stale cache served after size-neutral out-of-band mutation:\n%s", ans)
	}
	// Rewrite mode reads its own snapshot; it must detect the same thing.
	ans, err = ont.AnswerMode(q, ModeRewrite)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Contains([]logic.Term{logic.NewConst("bob")}) || !ans.Contains([]logic.Term{logic.NewConst("carol")}) {
		t.Errorf("stale base snapshot served in rewrite mode:\n%s", ans)
	}
}

// TestAnswersDoNotBlockBehindWriters is the stall regression for the
// reader-stall defect: chase- and rewrite-mode answering over published
// snapshots must complete while a writer holds the data lock exclusively —
// previously readers held the RWMutex across the whole evaluation, so one
// queued writer stalled every later reader. The test simulates a writer
// parked mid-mutation by holding o.mu for writing and requires concurrent
// answers to finish anyway — and, since PR 5, rule mutations too: AddRule
// and RemoveRule repair the materialization copy-on-write without ever
// touching the data lock, so ontology evolution neither waits for fact
// writers nor stalls a single reader.
func TestAnswersDoNotBlockBehindWriters(t *testing.T) {
	ont := MustParse(datagen.University().String() + "\n" + datagen.UniversityData(2, 1).String())
	const q = `q(X) :- person(X) .`
	// Prime provenance recording so the rule mutation below repairs the
	// published materialization incrementally instead of dropping it — a
	// dropped cache would force the racing readers into a cold rebuild,
	// which (correctly) waits for the data lock.
	if err := ont.AddFact(`undergraduateStudent(primer) .`); err != nil {
		t.Fatal(err)
	}
	if n, err := ont.DeleteFact(`undergraduateStudent(primer) .`); err != nil || n != 1 {
		t.Fatalf("priming delete: n=%d err=%v", n, err)
	}
	// Publish both snapshots before locking the writers out.
	if _, err := ont.AnswerMode(q, ModeChase); err != nil {
		t.Fatal(err)
	}
	if _, err := ont.AnswerMode(q, ModeRewrite); err != nil {
		t.Fatal(err)
	}

	ont.mu.Lock() // a writer parked mid-mutation
	defer ont.mu.Unlock()
	const tasks = 6
	done := make(chan error, tasks)
	for _, mode := range []AnswerMode{ModeChase, ModeRewrite, ModeChase, ModeRewrite} {
		mode := mode
		go func() {
			_, err := ont.AnswerMode(q, mode)
			done <- err
		}()
	}
	// A full rule-mutation cycle must also complete: it repairs the
	// published materialization without the data lock.
	go func() {
		if err := ont.AddRule(`department(X) -> organization(X) .`); err != nil {
			done <- err
			return
		}
		done <- ont.RemoveRule(ont.Rules().Rules[ont.Rules().Len()-1].Label)
	}()
	// And readers racing that rule mutation must not block either.
	go func() {
		_, err := ont.AnswerMode(q, ModeChase)
		done <- err
	}()
	timeout := time.After(10 * time.Second)
	for i := 0; i < tasks; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Error(err)
			}
		case <-timeout:
			t.Fatal("reader or rule mutator stalled behind a writer holding the data lock")
		}
	}
}

// TestConcurrentAnswerAddDelete hammers the snapshot seam from both
// directions: readers answer in chase mode over published snapshots while
// one writer streams AddFact deltas and another streams DeleteFact repairs.
// Under -race this is the coordination test; afterwards the answers must
// equal a from-scratch chase of the final data.
func TestConcurrentAnswerAddDelete(t *testing.T) {
	base := datagen.University().String() + "\n" + datagen.UniversityData(2, 1).String()
	ont := MustParse(base)
	const q = `q(X) :- person(X) .`
	if _, err := ont.AnswerMode(q, ModeChase); err != nil {
		t.Fatal(err)
	}

	const ops = 15
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < ops; i++ {
			if err := ont.AddFact(fmt.Sprintf("graduateStudent(g%d) .", i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < ops; i++ {
			if err := ont.AddFact(fmt.Sprintf("undergraduateStudent(u%d) .", i)); err != nil {
				t.Error(err)
				return
			}
			if _, err := ont.DeleteFact(fmt.Sprintf("undergraduateStudent(u%d) .", i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < ops; i++ {
			if _, err := ont.AnswerOptions(q, Options{Mode: ModeChase, Parallelism: 2}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	scratch := MustParse(base)
	for i := 0; i < ops; i++ {
		if err := scratch.AddFact(fmt.Sprintf("graduateStudent(g%d) .", i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scratch.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("concurrent add/delete maintenance diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
