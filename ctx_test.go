package repro

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datagen"
)

// trippingCtx is a context whose Err starts reporting context.Canceled after
// the first `trips` polls. Done returns a non-nil (never-closed) channel so
// the engines arm their amortized Err polling instead of disarming; nothing
// in the engine blocks on Done, so the channel never needs to close. Sweeping
// `trips` drives cancellation into every poll site of a mutation: the entry
// check, the chase round barrier, the per-worker firing loop, the DRed
// over-deletion and re-derivation scans, and the join executor.
type trippingCtx struct {
	done  chan struct{}
	polls atomic.Int64
	trips int64
}

func newTrippingCtx(trips int64) *trippingCtx {
	return &trippingCtx{done: make(chan struct{}), trips: trips}
}

func (c *trippingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *trippingCtx) Done() <-chan struct{}       { return c.done }
func (c *trippingCtx) Value(key any) any           { return nil }
func (c *trippingCtx) Err() error {
	if c.polls.Add(1) > c.trips {
		return context.Canceled
	}
	return nil
}

// chainFamilyOntology builds parent/ancestor over a parent chain of length n
// — every mutation below touches the recursive materialization.
func chainFamilyOntology(t *testing.T, n int) *Ontology {
	t.Helper()
	src := "parent(X, Y) -> ancestor(X, Y) .\nparent(X, Y), ancestor(Y, Z) -> ancestor(X, Z) .\n"
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("parent(p%d, p%d) .\n", i, i+1)
	}
	ont, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return ont
}

func answersFor(t *testing.T, ont *Ontology, queries []string, opts Options) []*Answers {
	t.Helper()
	out := make([]*Answers, len(queries))
	for i, q := range queries {
		ans, err := ont.AnswerOptions(q, opts)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		out[i] = ans
	}
	return out
}

// TestCanceledMutationLeavesSnapshotUntouched is the mutation-rollback
// regression test: a mutation whose context cancels at ANY point before the
// publish phase must leave the ontology answering exactly as before — same
// base facts, same published materialization — and must leave the derivation
// provenance intact, so that redoing the mutation for real afterwards still
// agrees with an ontology built from scratch on the final state. The
// cancellation point is swept (0, 1, 2, 4, ... context polls) until the
// mutation runs to completion, so every abort site in the pipeline is hit.
func TestCanceledMutationLeavesSnapshotUntouched(t *testing.T) {
	const chain = 24
	queries := []string{
		"q(X, Y) :- ancestor(X, Y) .",
		"q(X, Y) :- parent(X, Y) .",
		"q(X, Y) :- related(X, Y) .",
	}
	opts := Options{Mode: ModeChase}
	muts := []struct {
		name  string
		apply func(ont *Ontology, ctx context.Context) error
	}{
		{"add-fact", func(o *Ontology, ctx context.Context) error {
			return o.AddFactCtx(ctx, "parent(n0, n1) . parent(n1, n2) . parent(p24, n0) .")
		}},
		{"delete-fact", func(o *Ontology, ctx context.Context) error {
			n, err := o.DeleteFactCtx(ctx, "parent(p10, p11) .")
			if err == nil && n != 1 {
				return fmt.Errorf("deleted %d facts, want 1", n)
			}
			return err
		}},
		{"add-rule", func(o *Ontology, ctx context.Context) error {
			return o.AddRuleCtx(ctx, "ancestor(X, Y) -> related(X, Y) .")
		}},
		{"remove-rule", func(o *Ontology, ctx context.Context) error {
			return o.RemoveRuleCtx(ctx, o.Rules().Rules[1].Label)
		}},
	}
	for _, m := range muts {
		t.Run(m.name, func(t *testing.T) {
			canceledRuns := 0
			for k := int64(0); ; k = max(1, k*2) {
				if k > 1<<22 {
					t.Fatalf("mutation still canceling after %d polls", k)
				}
				ont := chainFamilyOntology(t, chain)
				before := answersFor(t, ont, queries, opts) // publishes the materialization
				err := m.apply(ont, newTrippingCtx(k))
				if err == nil {
					// The sweep reached a budget large enough for the whole
					// mutation: every earlier poll site has been exercised.
					if canceledRuns == 0 {
						t.Fatal("mutation never canceled, even with an immediately-tripping context")
					}
					t.Logf("%d canceled attempts before k=%d polls let the mutation finish", canceledRuns, k)
					return
				}
				canceledRuns++
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("k=%d: err = %v, want context.Canceled", k, err)
				}
				after := answersFor(t, ont, queries, opts)
				for i := range queries {
					if !before[i].Equal(after[i]) {
						t.Fatalf("k=%d: answers to %s changed across a canceled mutation:\nbefore:\n%s\nafter:\n%s",
							k, queries[i], before[i], after[i])
					}
				}
				// Provenance intact: redo the mutation for real and require
				// agreement with a scratch ontology on the resulting state.
				if err := m.apply(ont, context.Background()); err != nil {
					t.Fatalf("k=%d: redo after rollback: %v", k, err)
				}
				scratch, err := Parse(ont.Rules().String() + "\n" + factSrc(ont.Data().Atoms()))
				if err != nil {
					t.Fatal(err)
				}
				got := answersFor(t, ont, queries, opts)
				want := answersFor(t, scratch, queries, opts)
				for i := range queries {
					if !got[i].Equal(want[i]) {
						t.Fatalf("k=%d: after redo, %s diverges from scratch:\nincremental:\n%s\nscratch:\n%s",
							k, queries[i], got[i], want[i])
					}
				}
			}
		})
	}
}

// TestAnswerDeadlineExceededPromptly is the serving acceptance criterion at
// the library level: a 1ms-deadline query that forces a materialization-scale
// chase must return context.DeadlineExceeded promptly (not after the full
// chase), and the aborted build must not corrupt the ontology — a follow-up
// query without a deadline gets the complete answer set.
func TestAnswerDeadlineExceededPromptly(t *testing.T) {
	const departments = 32
	ont := New(datagen.University(), datagen.UniversityData(departments, 1))
	opts := Options{Mode: ModeChase, Parallelism: 4}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ont.AnswerCtx(ctx, "q(X) :- person(X) .", opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("took %v to honor a 1ms deadline", elapsed)
	}

	ans, err := ont.AnswerOptions("q(X) :- person(X) .", opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := departments * 13; ans.Len() != want {
		t.Fatalf("after aborted build: %d persons, want %d", ans.Len(), want)
	}
}

// TestCanceledParallelEvalNoGoroutineLeak hammers the parallel executor with
// already-canceled contexts: every worker must observe the cancellation at
// its next amortized poll, drain, and exit before AnswerCtx returns. Run
// under -race this also shakes out unsynchronized error plumbing.
func TestCanceledParallelEvalNoGoroutineLeak(t *testing.T) {
	ont := New(datagen.University(), datagen.UniversityData(16, 1))
	opts := Options{Mode: ModeChase, Parallelism: 8}
	// Publish the materialization so the canceled queries exercise only the
	// lock-free read path.
	if _, err := ont.AnswerOptions("q(X) :- person(X) .", opts); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	// A triple cross-product over persons: enough join candidates that each
	// worker is guaranteed to reach its amortized cancellation poll.
	const q = "q(X, Y, Z) :- person(X), person(Y), person(Z) ."
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := ont.AnswerCtx(ctx, q, opts); !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled", i, err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after 50 canceled parallel evaluations",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
