package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/datagen"
)

// ontologyFromDatagen renders a generated rule set and instance back to
// program text and parses it into an Ontology, exercising the whole public
// pipeline.
func ontologyFromDatagen(t *testing.T, fam datagen.Family, rules int, seed int64) *Ontology {
	t.Helper()
	set := datagen.Rules(datagen.Config{Family: fam, Rules: rules, Seed: seed})
	data := datagen.Instance(set, 20, 8, seed)
	src := set.String() + "\n" + data.String()
	ont, err := Parse(src)
	if err != nil {
		t.Fatalf("re-parsing generated ontology: %v", err)
	}
	return ont
}

// TestPropertyParallelEqualsSequential is the parallelism-correctness
// property test: across seeded random ontologies, the sequential and
// parallel chase/eval pipelines must produce identical sorted answer sets,
// and classification (which parallelism must not perturb) identical reports.
func TestPropertyParallelEqualsSequential(t *testing.T) {
	families := []datagen.Family{datagen.FamilyLinear, datagen.FamilyChain, datagen.FamilySticky}
	for _, fam := range families {
		for seed := int64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("%v/seed=%d", fam, seed), func(t *testing.T) {
				ontSeq := ontologyFromDatagen(t, fam, 5, seed)
				ontPar := ontologyFromDatagen(t, fam, 5, seed)

				if a, b := ontSeq.Classify().String(), ontPar.Classify().String(); a != b {
					t.Fatalf("Classify() reports differ:\n%s\nvs\n%s", a, b)
				}

				// One atomic query per predicate of the ontology.
				preds, err := ontSeq.Rules().Predicates()
				if err != nil {
					t.Fatal(err)
				}
				for p, arity := range preds {
					vars := make([]string, arity)
					for i := range vars {
						vars[i] = fmt.Sprintf("X%d", i+1)
					}
					q := fmt.Sprintf("q(%s) :- %s(%s) .", strings.Join(vars, ","), p, strings.Join(vars, ","))
					for _, mode := range []AnswerMode{ModeRewrite, ModeChase} {
						seq, errSeq := ontSeq.AnswerOptions(q, Options{Mode: mode})
						par, errPar := ontPar.AnswerOptions(q, Options{Mode: mode, Parallelism: 4})
						if (errSeq == nil) != (errPar == nil) {
							t.Fatalf("%s mode %v: error divergence: seq=%v par=%v", q, mode, errSeq, errPar)
						}
						if errSeq != nil {
							continue // budget hit in both; nothing exact to compare
						}
						if seq.String() != par.String() {
							t.Errorf("%s mode %v: answers differ:\nseq:\n%s\npar:\n%s", q, mode, seq, par)
						}
					}
				}
			})
		}
	}
}

// TestParallelModesAgree cross-checks the two expansion techniques under
// parallelism on an FO-rewritable workload: rewrite+eval and chase+eval must
// agree with each other and with their sequential counterparts.
func TestParallelModesAgree(t *testing.T) {
	ont := MustParse(datagen.University().String() + "\n" + datagen.UniversityData(3, 2).String())
	for _, q := range []string{
		`q(X) :- person(X) .`,
		`q(X,Y) :- advisor(X,Y) .`,
		`q(X) :- professor(X) .`,
	} {
		var renderings []string
		for _, mode := range []AnswerMode{ModeRewrite, ModeChase} {
			for _, par := range []int{1, 4} {
				ans, err := ont.AnswerOptions(q, Options{Mode: mode, Parallelism: par})
				if err != nil {
					t.Fatalf("%s mode=%v par=%d: %v", q, mode, par, err)
				}
				renderings = append(renderings, ans.String())
			}
		}
		for i := 1; i < len(renderings); i++ {
			if renderings[i] != renderings[0] {
				t.Errorf("%s: technique/parallelism combination %d disagrees", q, i)
			}
		}
	}
}
