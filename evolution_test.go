package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dependency"
	"repro/internal/logic"
)

// ruleSrc renders a TGD as plain program text (no label comment) for AddRule.
func ruleSrc(r *dependency.TGD) string {
	return logic.AtomsString(r.Body) + " -> " + logic.AtomsString(r.Head) + " ."
}

// TestPropertyOntologyEvolutionEqualsScratch is the live-evolution
// correctness property at the public API: over seeded random ontologies, a
// random interleaving of AddRule, RemoveRule, AddFact and DeleteFact — with
// chase-mode Answer calls in between, so the published materialization is
// repeatedly extended and DRed-repaired rather than rebuilt — must end with
// exactly the answers of an ontology parsed from scratch on the FINAL rule
// set and surviving facts. Sequential and parallel, race-clean under -race.
func TestPropertyOntologyEvolutionEqualsScratch(t *testing.T) {
	families := []datagen.Family{datagen.FamilyLinear, datagen.FamilyChain, datagen.FamilySticky}
	for _, fam := range families {
		for seed := int64(1); seed <= 5; seed++ {
			for _, par := range []int{1, 4} {
				t.Run(fmt.Sprintf("%v/seed=%d/par=%d", fam, seed, par), func(t *testing.T) {
					full := datagen.Rules(datagen.Config{Family: fam, Rules: 8, Seed: seed})
					data := datagen.Instance(full, 20, 8, seed)
					atoms := data.Atoms()

					rng := rand.New(rand.NewSource(seed * 50331653))
					rng.Shuffle(len(atoms), func(i, j int) { atoms[i], atoms[j] = atoms[j], atoms[i] })

					// Start with a rule prefix and a fact prefix; the rest are
					// the mutation reserves. Track the live base in a mirror.
					initRules := dependency.MustNewSet(full.Rules[:5]...)
					ruleReserve := full.Rules[5:]
					cut := 2 * len(atoms) / 3
					live := make(map[string]logic.Atom)
					for _, a := range atoms[:cut] {
						live[a.Key()] = a
					}
					factReserve := atoms[cut:]

					ont, err := Parse(initRules.String() + "\n" + factSrc(atoms[:cut]))
					if err != nil {
						t.Fatal(err)
					}
					opts := Options{Mode: ModeChase, Parallelism: par}
					// Queries over the FULL signature, so predicates touched
					// only by reserve rules are compared too.
					queries := atomicQueriesOf(t, full)
					if _, err := ont.AnswerOptions(queries[0], opts); err != nil {
						t.Skipf("initial chase over budget: %v", err)
					}

					for step := 0; step < 24; step++ {
						switch op := rng.Intn(6); {
						case op == 0 && len(ruleReserve) > 0: // add a rule
							if err := ont.AddRule(ruleSrc(ruleReserve[0])); err != nil {
								t.Fatal(err)
							}
							ruleReserve = ruleReserve[1:]
						case op == 1 && ont.Rules().Len() > 1: // remove a rule
							rules := ont.Rules()
							label := rules.Rules[rng.Intn(rules.Len())].Label
							if err := ont.RemoveRule(label); err != nil {
								t.Fatal(err)
							}
						case op <= 3 && len(factReserve) > 0: // insert facts
							n := 1 + rng.Intn(3)
							if n > len(factReserve) {
								n = len(factReserve)
							}
							if err := ont.AddFact(factSrc(factReserve[:n])); err != nil {
								t.Fatal(err)
							}
							for _, a := range factReserve[:n] {
								live[a.Key()] = a
							}
							factReserve = factReserve[n:]
						case len(live) > 0: // delete facts
							var victims []logic.Atom
							want := 1 + rng.Intn(3)
							for _, a := range live {
								victims = append(victims, a)
								if len(victims) == want {
									break
								}
							}
							if n, err := ont.DeleteFact(factSrc(victims)); err != nil || n != len(victims) {
								t.Fatalf("DeleteFact removed %d of %d live facts, err=%v", n, len(victims), err)
							}
							for _, a := range victims {
								delete(live, a.Key())
							}
						}
						if rng.Intn(2) == 0 {
							if _, err := ont.AnswerOptions(queries[rng.Intn(len(queries))], opts); err != nil {
								// Random rule additions can evolve the set into
								// a non-terminating one; a budget error is the
								// correct answer there, not a divergence.
								t.Skipf("evolved chase over budget: %v", err)
							}
						}
					}

					var final []logic.Atom
					for _, a := range live {
						final = append(final, a)
					}
					ontScratch, err := Parse(ont.Rules().String() + "\n" + factSrc(final))
					if err != nil {
						t.Fatal(err)
					}
					for _, q := range queries {
						inc, errInc := ont.AnswerOptions(q, opts)
						scr, errScr := ontScratch.AnswerOptions(q, opts)
						if (errInc == nil) != (errScr == nil) {
							t.Fatalf("%s: error divergence: inc=%v scratch=%v", q, errInc, errScr)
						}
						if errInc != nil {
							continue
						}
						if !inc.Equal(scr) {
							t.Errorf("%s: answers differ:\nincremental:\n%s\nscratch:\n%s", q, inc, scr)
						}
					}
				})
			}
		}
	}
}

// atomicQueriesOf returns one atomic query per predicate of an explicit set.
func atomicQueriesOf(t *testing.T, set *dependency.Set) []string {
	t.Helper()
	preds, err := set.Predicates()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for p, arity := range preds {
		vars := make([]string, arity)
		for i := range vars {
			vars[i] = fmt.Sprintf("X%d", i+1)
		}
		out = append(out, fmt.Sprintf("q(%s) :- %s(%s) .", joinVars(vars), p, joinVars(vars)))
	}
	return out
}

func joinVars(vs []string) string {
	out := ""
	for i, v := range vs {
		if i > 0 {
			out += ","
		}
		out += v
	}
	return out
}

// TestAddRuleIncrementalStepsProportionalToDelta asserts, through the public
// counters, that AddRule extends the published materialization with work
// proportional to what the new rule derives, not to the instance — and that
// RemoveRule takes exactly that contribution back out.
func TestAddRuleIncrementalStepsProportionalToDelta(t *testing.T) {
	ont := MustParse(datagen.University().String() + "\n" + datagen.UniversityData(16, 1).String())
	if _, err := ont.AnswerMode(`q(X) :- person(X) .`, ModeChase); err != nil {
		t.Fatal(err)
	}
	s0 := ont.MaterializationStats()
	if s0.LastSteps < 100 {
		t.Fatalf("initial build fired %d steps; workload too small for the proportionality claim", s0.LastSteps)
	}

	// One firing per department (16), nothing to propagate.
	if err := ont.AddRule(`department(X) -> organization(X) .`); err != nil {
		t.Fatal(err)
	}
	s1 := ont.MaterializationStats()
	if !s1.Cached || s1.Epoch != s0.Epoch+1 {
		t.Fatalf("stats after AddRule = %+v, want epoch bump on the extended cache", s1)
	}
	if s1.LastSteps != 16 {
		t.Errorf("AddRule LastSteps = %d, want 16 (one per department; initial build: %d)", s1.LastSteps, s0.LastSteps)
	}
	if s1.Steps != s0.Steps+s1.LastSteps {
		t.Errorf("cumulative Steps = %d, want initial %d + increment %d", s1.Steps, s0.Steps, s1.LastSteps)
	}
	ans, err := ont.AnswerMode(`q(X) :- organization(X) .`, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 16 {
		t.Errorf("organizations = %d, want 16", ans.Len())
	}
	label := ont.Rules().Rules[ont.Rules().Len()-1].Label

	// RemoveRule pays one provenance rebuild the first time (recording was
	// off), then repairs are incremental; either way the answers must drop
	// the rule's contribution.
	if err := ont.RemoveRule(label); err != nil {
		t.Fatal(err)
	}
	ans, err = ont.AnswerMode(`q(X) :- organization(X) .`, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 0 {
		t.Errorf("organizations after RemoveRule = %d, want 0", ans.Len())
	}

	// Second cycle: the cache now records provenance, so the removal itself
	// must be an incremental repair (epoch bump, delta-sized step count).
	if err := ont.AddRule(`department(X) -> organization(X) .`); err != nil {
		t.Fatal(err)
	}
	s2 := ont.MaterializationStats()
	if !s2.Cached {
		t.Fatal("cache must be maintained across the second AddRule")
	}
	label = ont.Rules().Rules[ont.Rules().Len()-1].Label
	if err := ont.RemoveRule(label); err != nil {
		t.Fatal(err)
	}
	s3 := ont.MaterializationStats()
	if !s3.Cached || s3.Epoch != s2.Epoch+1 {
		t.Fatalf("stats after incremental RemoveRule = %+v, want a repaired (not dropped) cache", s3)
	}
	if s3.LastSteps > 20 {
		t.Errorf("RemoveRule repair LastSteps = %d, want delta-proportional (initial build: %d)", s3.LastSteps, s0.LastSteps)
	}
	ans, err = ont.AnswerMode(`q(X) :- organization(X) .`, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 0 {
		t.Errorf("organizations after second RemoveRule = %d, want 0", ans.Len())
	}
}

// TestClassifyInvalidatedByRuleMutation is the stale-classification
// regression: Classify used to be cached behind a sync.Once and would serve
// the pre-mutation landscape forever. After AddRule/RemoveRule the report
// must reflect the current rule set — here FO-rewritability flips off when
// the paper's Example 2 pair (not WR, rewriting diverges) is added live,
// and back on when it is removed.
func TestClassifyInvalidatedByRuleMutation(t *testing.T) {
	ont := MustParse(`
student(X) -> person(X) .
student(alice) .
`)
	if !ont.Classify().FORewritable {
		t.Fatal("the linear hierarchy must start FO-rewritable")
	}
	if err := ont.AddRule(`t(Y1,Y2), r(Y3,Y4) -> s(Y1,Y3,Y2) .`); err != nil {
		t.Fatal(err)
	}
	if err := ont.AddRule(`s(Y1,Y1,Y2) -> r(Y2,Y3) .`); err != nil {
		t.Fatal(err)
	}
	if ont.Rules().Len() != 3 {
		t.Fatalf("rules = %d, want 3", ont.Rules().Len())
	}
	rep := ont.Classify()
	if rep.FORewritable {
		t.Errorf("stale classification served after AddRule:\n%s", rep)
	}
	// Removing the dangerous pair restores the original landscape.
	labels := []string{
		ont.Rules().Rules[1].Label,
		ont.Rules().Rules[2].Label,
	}
	for _, l := range labels {
		if err := ont.RemoveRule(l); err != nil {
			t.Fatal(err)
		}
	}
	if !ont.Classify().FORewritable {
		t.Error("stale classification served after RemoveRule")
	}
	// And ModeAuto follows the fresh report: with the pair gone the query
	// must answer (rewriting), with it present it must still answer (chase
	// fallback through the same Classify).
	if _, err := ont.Answer(`q(X) :- person(X) .`); err != nil {
		t.Fatal(err)
	}
}

// TestRuleMutationValidation: malformed or inconsistent rule mutations must
// be rejected as strict no-ops — and unknown labels too.
func TestRuleMutationValidation(t *testing.T) {
	ont := MustParse(`
student(X) -> person(X) .
student(alice) .
`)
	if _, err := ont.AnswerMode(`q(X) :- person(X) .`, ModeChase); err != nil {
		t.Fatal(err)
	}
	s0 := ont.MaterializationStats()
	for _, bad := range []string{
		`student(X, Y) -> tall(X) .`,                  // arity conflict with the rule set / data
		`person(X) -> q(X) . f(a) .`,                  // not a single rule
		`person(bob) .`,                               // a fact
		`person(X), tall(X) -> q(X) . q(Y) -> r(Y) .`, // two rules
	} {
		if err := ont.AddRule(bad); err == nil {
			t.Errorf("AddRule(%q) must error", bad)
		}
	}
	if err := ont.RemoveRule("R99"); err == nil {
		t.Error("RemoveRule of an unknown label must error")
	}
	if ont.Rules().Len() != 1 {
		t.Errorf("rules = %d after rejected mutations, want 1", ont.Rules().Len())
	}
	s1 := ont.MaterializationStats()
	if !s1.Cached || s1.Epoch != s0.Epoch {
		t.Errorf("rejected mutations must keep the cache: %+v -> %+v", s0, s1)
	}
}

// TestCompactionKeepsMaintenanceCorrect is the generational-sweep property
// at the public API: with compaction forced on every mutation, a stream of
// add/delete/rule mutations must still answer exactly like scratch, the
// sweep counters must move, and — the acceptance criterion — DeleteFact
// after a sweep still repairs correctly.
func TestCompactionKeepsMaintenanceCorrect(t *testing.T) {
	base := datagen.University().String() + "\n" + datagen.UniversityData(2, 1).String()
	ont := MustParse(base)
	ont.SetCompactEvery(1)
	const q = `q(X) :- person(X) .`
	if _, err := ont.AnswerMode(q, ModeChase); err != nil {
		t.Fatal(err)
	}
	// Prime provenance recording (first delete drops the provenance-less
	// cache, sticky-enabling the graph for every later build).
	if err := ont.AddFact(`undergraduateStudent(primer) .`); err != nil {
		t.Fatal(err)
	}
	if n, err := ont.DeleteFact(`undergraduateStudent(primer) .`); err != nil || n != 1 {
		t.Fatalf("priming delete: n=%d err=%v", n, err)
	}
	if _, err := ont.AnswerMode(q, ModeChase); err != nil {
		t.Fatal(err)
	}

	// Maintenance stream: every mutation both dirties and sweeps the graph.
	for i := 0; i < 8; i++ {
		if err := ont.AddFact(fmt.Sprintf("undergraduateStudent(c%d) .", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if n, err := ont.DeleteFact(fmt.Sprintf("undergraduateStudent(c%d) .", i)); err != nil || n != 1 {
			t.Fatalf("delete c%d: n=%d err=%v", i, n, err)
		}
	}
	if err := ont.AddRule(`department(X) -> organization(X) .`); err != nil {
		t.Fatal(err)
	}
	if err := ont.RemoveRule(ont.Rules().Rules[ont.Rules().Len()-1].Label); err != nil {
		t.Fatal(err)
	}
	st := ont.MaterializationStats()
	if !st.Cached || st.Compactions == 0 {
		t.Fatalf("stats = %+v, want compaction sweeps to have run", st)
	}
	if st.ProvDeadDerivations != 0 {
		t.Errorf("ProvDeadDerivations = %d after a sweep-every-mutation stream, want 0", st.ProvDeadDerivations)
	}

	// The acceptance criterion: a DeleteFact against the compacted graph
	// still repairs to exactly the scratch answers.
	if n, err := ont.DeleteFact(`undergraduateStudent(c5) .`); err != nil || n != 1 {
		t.Fatalf("post-compaction delete: n=%d err=%v", n, err)
	}
	got, err := ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	scratch := MustParse(base)
	for _, i := range []int{4, 6, 7} { // c0..c3 and c5 were deleted
		if err := scratch.AddFact(fmt.Sprintf("undergraduateStudent(c%d) .", i)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := scratch.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("post-compaction maintenance diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// An on-demand sweep with nothing dead is a no-op; with auto-compaction
	// off, dead derivations accumulate until one is requested.
	ont.SetCompactEvery(0)
	if n, err := ont.DeleteFact(`undergraduateStudent(c6) .`); err != nil || n != 1 {
		t.Fatalf("delete c6: n=%d err=%v", n, err)
	}
	if st := ont.MaterializationStats(); st.ProvDeadDerivations == 0 {
		t.Error("with auto-compaction off, the dead derivations must remain visible")
	}
	if dropped := ont.CompactProvenance(); dropped == 0 {
		t.Error("on-demand CompactProvenance must reclaim the dead derivations")
	}
	if dropped := ont.CompactProvenance(); dropped != 0 {
		t.Errorf("idle sweep dropped %d, want 0", dropped)
	}
}

// TestConcurrentEvolutionAndAnswer hammers every mutation kind against
// concurrent readers: one writer streams fact mutations, another streams
// rule mutations, while readers answer in chase mode over published
// snapshots. Under -race this is the pipeline coordination test; afterwards
// the answers must equal a from-scratch parse of the final state.
func TestConcurrentEvolutionAndAnswer(t *testing.T) {
	base := datagen.University().String() + "\n" + datagen.UniversityData(2, 1).String()
	ont := MustParse(base)
	const q = `q(X) :- person(X) .`
	if _, err := ont.AnswerMode(q, ModeChase); err != nil {
		t.Fatal(err)
	}

	const ops = 10
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < ops; i++ {
			if err := ont.AddFact(fmt.Sprintf("graduateStudent(g%d) .", i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	ruleDone := make(chan struct{})
	go func() {
		defer close(ruleDone)
		for i := 0; i < ops; i++ {
			if err := ont.AddRule(fmt.Sprintf("department(X) -> org%d(X) .", i)); err != nil {
				t.Error(err)
				return
			}
			if err := ont.RemoveRule(ont.Rules().Rules[ont.Rules().Len()-1].Label); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < ops; i++ {
		if _, err := ont.AnswerOptions(q, Options{Mode: ModeChase, Parallelism: 2}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	<-ruleDone

	scratch := MustParse(base)
	for i := 0; i < ops; i++ {
		if err := scratch.AddFact(fmt.Sprintf("graduateStudent(g%d) .", i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ont.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scratch.AnswerMode(q, ModeChase)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("concurrent evolution diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if ont.Rules().Len() != scratch.Rules().Len() {
		t.Errorf("rules = %d, want %d (every added rule was removed)", ont.Rules().Len(), scratch.Rules().Len())
	}
}

// TestFullRebuildsSurfacedInStats is the observability regression for the
// silent-rebuild path: RemoveRule against a cache built without provenance
// cannot repair incrementally, so it drops the materialization and the next
// chase answer rebuilds from scratch. That used to be invisible — the stats
// looked identical to a healthy repair once the rebuild finished. The
// FullRebuilds counter must tick exactly on the drop, and must NOT tick when
// the second removal (provenance now recorded) repairs incrementally.
func TestFullRebuildsSurfacedInStats(t *testing.T) {
	ont := MustParse(datagen.University().String() + "\n" + datagen.UniversityData(4, 1).String())
	if err := ont.AddRule(`department(X) -> organization(X) .`); err != nil {
		t.Fatal(err)
	}
	label := ont.Rules().Rules[ont.Rules().Len()-1].Label
	if _, err := ont.AnswerMode(`q(X) :- person(X) .`, ModeChase); err != nil {
		t.Fatal(err)
	}
	if s := ont.MaterializationStats(); !s.Cached || s.FullRebuilds != 0 {
		t.Fatalf("fresh build stats = %+v, want cached with FullRebuilds 0", s)
	}

	// Provenance was off during the build: the removal silently drops the
	// cache instead of repairing it, and the counter must say so.
	if err := ont.RemoveRule(label); err != nil {
		t.Fatal(err)
	}
	s1 := ont.MaterializationStats()
	if s1.Cached {
		t.Fatalf("provenance-less RemoveRule kept the cache: %+v", s1)
	}
	if s1.FullRebuilds != 1 {
		t.Fatalf("FullRebuilds after provenance-less RemoveRule = %d, want 1", s1.FullRebuilds)
	}

	// Rebuild (now recording provenance), then a second add/remove cycle
	// repairs incrementally — no further drop, counter unchanged.
	if _, err := ont.AnswerMode(`q(X) :- person(X) .`, ModeChase); err != nil {
		t.Fatal(err)
	}
	if err := ont.AddRule(`department(X) -> organization(X) .`); err != nil {
		t.Fatal(err)
	}
	label = ont.Rules().Rules[ont.Rules().Len()-1].Label
	if err := ont.RemoveRule(label); err != nil {
		t.Fatal(err)
	}
	s2 := ont.MaterializationStats()
	if !s2.Cached {
		t.Fatalf("incremental RemoveRule dropped the cache: %+v", s2)
	}
	if s2.FullRebuilds != 1 {
		t.Fatalf("FullRebuilds after incremental RemoveRule = %d, want still 1", s2.FullRebuilds)
	}
}
